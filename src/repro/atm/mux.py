"""Cell multiplexing onto an output link with finite buffering.

An :class:`OutputPort` is the canonical ATM congestion point: a FIFO of
cells draining at link rate.  When the FIFO is full, arriving cells are
dropped (drop-tail) -- this is where correlated loss comes from in real
switches.  A :class:`CellMultiplexer` funnels several upstream sources
into one port.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.atm.cell import AtmCell
from repro.atm.link import PhysicalLink
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, TimeWeightedStat


class OutputPort:
    """A bounded cell FIFO drained onto a physical link.

    The drain process is event-driven: whenever the queue becomes
    non-empty a serialization is started, and each serialization's
    completion pulls the next cell.  Occupancy is tracked time-weighted
    so buffer-sizing experiments read the mean/max directly.
    """

    def __init__(
        self,
        sim: Simulator,
        link: PhysicalLink,
        buffer_cells: Optional[int] = None,
        name: str = "port",
    ) -> None:
        if buffer_cells is not None and buffer_cells < 1:
            raise ValueError("buffer_cells must be >= 1 or None (unbounded)")
        self.sim = sim
        self.link = link
        self.buffer_cells = buffer_cells
        self.name = name
        self._queue: Deque[AtmCell] = deque()
        self._draining = False
        self.enqueued = Counter(f"{name}.enqueued")
        self.dropped = Counter(f"{name}.dropped")
        self.occupancy = TimeWeightedStat(sim.now, 0)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return (
            self.buffer_cells is not None
            and len(self._queue) >= self.buffer_cells
        )

    def offer(self, cell: AtmCell) -> bool:
        """Accept *cell* into the FIFO, or drop it if full."""
        if self.is_full:
            self.dropped.increment()
            return False
        self._queue.append(cell)
        self.enqueued.increment()
        self.occupancy.record(self.sim.now, len(self._queue))
        if not self._draining:
            self._drain_next()
        return True

    # Alias so a port can terminate a PhysicalLink directly.
    receive_cell = offer

    def _drain_next(self) -> None:
        if not self._queue:
            self._draining = False
            return
        self._draining = True
        cell = self._queue.popleft()
        self.occupancy.record(self.sim.now, len(self._queue))
        done = self.link.send(cell)
        done.add_callback(lambda _ev: self._drain_next())

    @property
    def loss_ratio(self) -> float:
        offered = self.enqueued.count + self.dropped.count
        return self.dropped.count / offered if offered else 0.0


class CellMultiplexer:
    """N-to-1 cell funnel: many sources feed one :class:`OutputPort`.

    Sources call :meth:`input` (or use the object as a cell sink).  The
    multiplexer itself adds no delay -- contention shows up as queueing
    in the port, exactly as in an output-buffered switch element.
    """

    def __init__(self, sim: Simulator, port: OutputPort, name: str = "mux"):
        self.sim = sim
        self.port = port
        self.name = name
        self.cells_in = Counter(f"{name}.in")

    def input(self, cell: AtmCell) -> bool:
        """Feed one cell through the mux; False if the port dropped it."""
        self.cells_in.increment()
        return self.port.offer(cell)

    receive_cell = input
