"""VPI/VCI addressing helpers.

ATM identifies a virtual channel on a link by the (VPI, VCI) pair.  VCIs
0..31 on VPI 0 are reserved by I.361 for framing, signalling and
management; user VCs must avoid them.
"""

from __future__ import annotations

from typing import NamedTuple

#: VCIs below this value (on VPI 0) are reserved by I.361.
RESERVED_VCI_LIMIT = 32

VCI_UNASSIGNED = 0
VCI_META_SIGNALLING = 1
VCI_BROADCAST_SIGNALLING = 2
VCI_SIGNALLING = 5
VCI_ILMI = 16

MAX_VPI_UNI = 0xFF
MAX_VPI_NNI = 0xFFF
MAX_VCI = 0xFFFF


class VcAddress(NamedTuple):
    """A (VPI, VCI) pair identifying a virtual channel on one link."""

    vpi: int
    vci: int

    @classmethod
    def validated(cls, vpi: int, vci: int, nni: bool = False) -> "VcAddress":
        """Construct with range checking (use for user input paths)."""
        max_vpi = MAX_VPI_NNI if nni else MAX_VPI_UNI
        if not 0 <= vpi <= max_vpi:
            raise ValueError(f"VPI {vpi} out of range 0..{max_vpi}")
        if not 0 <= vci <= MAX_VCI:
            raise ValueError(f"VCI {vci} out of range 0..{MAX_VCI}")
        return cls(vpi, vci)

    @property
    def is_reserved(self) -> bool:
        """True for the I.361 reserved range (VPI 0, VCI < 32)."""
        return self.vpi == 0 and self.vci < RESERVED_VCI_LIMIT

    @property
    def is_signalling(self) -> bool:
        return self.vpi == 0 and self.vci == VCI_SIGNALLING

    def __str__(self) -> str:
        return f"{self.vpi}/{self.vci}"


def first_user_vci(start: int = RESERVED_VCI_LIMIT) -> int:
    """Lowest VCI usable for user traffic (for allocators)."""
    return max(start, RESERVED_VCI_LIMIT)
