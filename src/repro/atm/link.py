"""Physical links: serialization timing, propagation, loss injection.

A link is characterised by its *payload rate* -- the bit rate left for
cells after physical-layer framing overhead.  The presets carry the
numbers the 1991 host interface targeted:

- TAXI-class 100 Mb/s (the FDDI PMD many early ATM LANs borrowed),
- SONET STS-3c: 155.52 Mb/s line, 149.76 Mb/s payload,
- SONET STS-12c: 622.08 Mb/s line, 599.04 Mb/s payload,
- DS3: 44.736 Mb/s with PLCP framing (~40.7 Mb/s of cells).

The cell slot time of a link -- 53 bytes at payload rate -- is *the*
reference quantity of the paper's analysis: a protocol engine keeps up
with the link exactly when its per-cell service time stays below the
slot time (2.83 us at STS-3c, 0.71 us at STS-12c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.atm.burst import CellBurst
from repro.atm.cell import CELL_SIZE, AtmCell
from repro.atm.errors import LossModel, NoLoss
from repro.sim.core import Event, Simulator
from repro.sim.monitor import Counter

CellSink = Union[Callable[[AtmCell], None], "SupportsReceiveCell"]

#: simlint SL7 dual-path registry (docs/STATIC_ANALYSIS.md): burst
#: transmission must book the same per-cell loss and delivery
#: accounting as scalar sends.
PATH_PAIRS = [
    {
        "scalar": "PhysicalLink.send",
        "burst": "PhysicalLink.send_burst",
        "why": (
            "burst sends serialize, lose and deliver cells with the "
            "scalar path's exact accounting, batched per wire burst"
        ),
    },
]


class SupportsReceiveCell:
    """Structural interface: anything with ``receive_cell(cell)``."""

    def receive_cell(self, cell: AtmCell) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class LinkSpec:
    """Static description of a physical link type."""

    name: str
    line_rate_bps: float
    payload_rate_bps: float

    def __post_init__(self) -> None:
        if self.payload_rate_bps <= 0:
            raise ValueError("payload rate must be positive")
        if self.payload_rate_bps > self.line_rate_bps:
            raise ValueError("payload rate cannot exceed line rate")

    @property
    def cell_time(self) -> float:
        """Seconds to serialize one 53-byte cell at payload rate."""
        return (CELL_SIZE * 8) / self.payload_rate_bps

    @property
    def cell_rate(self) -> float:
        """Cells per second the link can carry."""
        return self.payload_rate_bps / (CELL_SIZE * 8)

    @property
    def effective_user_rate_bps(self) -> float:
        """Bit rate available to 48-byte cell payloads (the ATM tax)."""
        return self.payload_rate_bps * 48 / CELL_SIZE


TAXI_100 = LinkSpec("TAXI-100", 125e6, 100e6)
STS3C_155 = LinkSpec("STS-3c", 155.52e6, 149.76e6)
STS12C_622 = LinkSpec("STS-12c", 622.08e6, 599.04e6)
DS3_45 = LinkSpec("DS3", 44.736e6, 40.704e6)


class PhysicalLink:
    """A unidirectional cell pipe with serialization and propagation.

    ``send(cell)`` returns an event that fires when the cell has finished
    serializing (i.e. when the sender may reuse its transmit machinery);
    the cell is delivered to *sink* one propagation delay later, unless
    the loss model eats it.  Cells serialize strictly in order at the
    link's cell slot time; idle slots are implicit.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        sink: Optional[CellSink] = None,
        propagation_delay: float = 0.0,
        loss_model: Optional[LossModel] = None,
        error_model=None,
        name: str = "",
    ) -> None:
        if propagation_delay < 0:
            raise ValueError("propagation delay must be >= 0")
        self.sim = sim
        self.spec = spec
        self.sink = sink
        self.propagation_delay = propagation_delay
        self.loss_model = loss_model if loss_model is not None else NoLoss()
        #: Optional corruption hook (``maybe_corrupt(cell) -> cell``,
        #: e.g. :class:`~repro.atm.errors.BitErrorModel`): applied to
        #: every cell that survives the loss model, modelling payload or
        #: header bit errors on the wire.
        self.error_model = error_model
        self.name = name or f"link-{spec.name}"
        self._next_free = 0.0
        self._busy_time = 0.0
        self.cells_sent = Counter(f"{self.name}.sent")
        self.cells_delivered = Counter(f"{self.name}.delivered")
        self.cells_lost = Counter(f"{self.name}.lost")
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None

    def connect(self, sink: CellSink) -> None:
        """Attach (or replace) the receiving end."""
        self.sink = sink

    def send(self, cell: AtmCell) -> Event:
        """Enqueue *cell* for serialization; event fires at wire-out time."""
        now = self.sim.now
        start = max(now, self._next_free)
        done = start + self.spec.cell_time
        self._next_free = done
        self._busy_time += self.spec.cell_time
        self.cells_sent.increment()
        if self.trace is not None:
            self.trace.emit("link.cell.sent", actor=self.name, cell=cell)

        if self.loss_model.should_drop(cell, now):
            self.cells_lost.increment()
            if self.trace is not None:
                self.trace.emit(
                    "cell.drop", actor=self.name, cell=cell,
                    reason="link_lost",
                )
        else:
            if self.error_model is not None:
                cell = self.error_model.maybe_corrupt(cell)
            self.sim.schedule_call(
                (done - now) + self.propagation_delay, self._deliver, cell
            )
        finished = Event(self.sim)
        finished._state = Event._TRIGGERED
        finished._value = cell
        self.sim._schedule(done - now, finished)
        return finished

    def send_burst(self, burst: CellBurst) -> Event:
        """Serialize a pre-announced burst; event fires at last wire-out.

        The scalar arithmetic, run per cell in one pass: each cell
        starts serializing at ``max(arrival, next_free)`` -- its embedded
        arrival is exactly when the scalar framer would have offered it
        -- and the loss/error models see each cell individually at its
        start slot.  Surviving cells travel as one delivery event fired
        at the *first* survivor's arrival instant, carrying per-cell
        delivery times for the receiving end to replay.
        """
        now = self.sim.now
        cell_time = self.spec.cell_time
        propagation = self.propagation_delay
        done = self._next_free
        survivors = []
        deliveries = []
        for cell, available in zip(burst.cells, burst.arrivals):
            start = available if available > self._next_free else self._next_free
            done = start + cell_time
            self._next_free = done
            self._busy_time += cell_time
            self.cells_sent.increment()
            if self.trace is not None:
                self.trace.emit(
                    "link.cell.sent", actor=self.name, cell=cell, ts=start
                )
            if self.loss_model.should_drop(cell, start):
                self.cells_lost.increment()
                if self.trace is not None:
                    self.trace.emit(
                        "cell.drop", actor=self.name, cell=cell,
                        reason="link_lost", ts=start,
                    )
                continue
            if self.error_model is not None:
                cell = self.error_model.maybe_corrupt(cell)
            survivors.append(cell)
            # Same float expression as the scalar ``send`` delivery
            # (``(done - now) + propagation`` from the call time, which
            # for the scalar framer is this cell's start slot).
            deliveries.append(start + ((done - start) + propagation))
        if survivors:
            delivered = CellBurst(survivors, deliveries)
            self.sim.schedule_call_at(
                deliveries[0], self._deliver_burst, delivered
            )
        finished = Event(self.sim)
        finished._state = Event._TRIGGERED
        finished._value = burst
        self.sim._schedule_at(done, finished)
        return finished

    def _deliver(self, cell: AtmCell) -> None:
        self.cells_delivered.increment()
        if self.trace is not None:
            self.trace.emit("link.cell.delivered", actor=self.name, cell=cell)
        if self.sink is None:
            raise RuntimeError(f"{self.name} has no sink attached")
        receive = getattr(self.sink, "receive_cell", None)
        if receive is not None:
            receive(cell)
        else:
            self.sink(cell)

    def _deliver_burst(self, burst: CellBurst) -> None:
        if self.sink is None:
            raise RuntimeError(f"{self.name} has no sink attached")
        receive_burst = getattr(self.sink, "receive_burst", None)
        if receive_burst is not None:
            self.cells_delivered.increment(len(burst))
            if self.trace is not None:
                for cell, when in zip(burst.cells, burst.arrivals):
                    self.trace.emit(
                        "link.cell.delivered",
                        actor=self.name,
                        cell=cell,
                        ts=when,
                    )
            receive_burst(burst)
            return
        # Burst-unaware sink (e.g. a switch input): replay the cells at
        # their own arrival times, not all at the first -- a sink that
        # reads ``sim.now`` (fabric delays, port pacing) must see each
        # cell at exactly the instant the scalar path would deliver it.
        for cell, when in zip(burst.cells, burst.arrivals):
            if when <= self.sim.now:
                self._deliver(cell)
            else:
                self.sim.schedule_call_at(when, self._deliver, cell)

    @property
    def backlog_time(self) -> float:
        """Seconds of queued serialization work ahead of a new cell."""
        return max(0.0, self._next_free - self.sim.now)

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of elapsed time the link spent serializing cells."""
        end = self.sim.now if now is None else now
        if end <= 0:
            return 0.0
        return min(1.0, self._busy_time / end)
