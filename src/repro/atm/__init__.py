"""The ATM layer substrate: cells, links, switching, policing.

Everything the host interface plugs into lives here.  The cell model is
functionally real -- 53-byte cells with a correct 5-byte header and HEC --
while links, multiplexers and switches are discrete-event components with
cell-slot timing derived from the physical-layer payload rate.

Era note: this models the 1991 UNI cell format (GFC/VPI/VCI/PTI/CLP/HEC)
and the physical layers the Aurora-testbed interface targeted (TAXI-class
100 Mb/s and SONET STS-3c / STS-12c).
"""

from repro.atm.burst import CellBurst
from repro.atm.addressing import (
    RESERVED_VCI_LIMIT,
    VCI_ILMI,
    VCI_SIGNALLING,
    VcAddress,
)
from repro.atm.cell import (
    CELL_SIZE,
    HEADER_SIZE,
    PAYLOAD_SIZE,
    AtmCell,
    CellFormatError,
)
from repro.atm.errors import (
    BitErrorModel,
    CompositeLoss,
    GilbertElliottLoss,
    NoLoss,
    ScheduledLoss,
    TailLoss,
    UniformLoss,
)
from repro.atm.hec import (
    CellDelineation,
    DelineationState,
    check_hec,
    compute_hec,
    correct_header,
)
from repro.atm.link import (
    LinkSpec,
    PhysicalLink,
    STS3C_155,
    STS12C_622,
    TAXI_100,
    DS3_45,
)
from repro.atm.mux import CellMultiplexer, OutputPort
from repro.atm.oam import LoopbackCell, OamFormatError
from repro.atm.policing import Gcra, LeakyBucketShaper
from repro.atm.signalling import (
    CallRefused,
    CallState,
    SIGNALLING_VC,
    SignallingAgent,
    SignallingMessage,
)
from repro.atm.switch import AtmSwitch, RoutingEntry
from repro.atm.tap import CellTap
from repro.atm.vc import ServiceClass, VcState, VcTable, VirtualConnection

__all__ = [
    "AtmCell",
    "AtmSwitch",
    "BitErrorModel",
    "CELL_SIZE",
    "CallRefused",
    "CallState",
    "CellBurst",
    "CellDelineation",
    "CellFormatError",
    "CellTap",
    "CellMultiplexer",
    "CompositeLoss",
    "DS3_45",
    "DelineationState",
    "Gcra",
    "GilbertElliottLoss",
    "HEADER_SIZE",
    "LeakyBucketShaper",
    "LinkSpec",
    "LoopbackCell",
    "NoLoss",
    "OamFormatError",
    "OutputPort",
    "PAYLOAD_SIZE",
    "PhysicalLink",
    "RESERVED_VCI_LIMIT",
    "RoutingEntry",
    "SIGNALLING_VC",
    "STS12C_622",
    "STS3C_155",
    "ScheduledLoss",
    "ServiceClass",
    "SignallingAgent",
    "SignallingMessage",
    "TAXI_100",
    "TailLoss",
    "UniformLoss",
    "VCI_ILMI",
    "VCI_SIGNALLING",
    "VcAddress",
    "VcState",
    "VcTable",
    "VirtualConnection",
    "check_hec",
    "compute_hec",
    "correct_header",
]
