"""OAM F5 fault management: loopback, AIS/RDI alarms, continuity checks.

I.610 defines fault-management cells that flow *inside* a virtual
channel (F5 flow) but are marked by the PTI as management traffic
(PTI = 0b101 for end-to-end).  The loopback function is the one every
operator used: send a loopback cell with the "to be looped" indication
set, the far end's hardware reflects it with the indication cleared,
and the round-trip time measures the path through both interfaces'
cell machinery -- *without* touching either host.

Beyond loopback this module carries the alarm vocabulary of the
fault-management plane:

- **AIS** (Alarm Indication Signal) flows *downstream* from the point
  that detected a defect, telling everyone past the break that the
  upstream path is dead;
- **RDI** (Remote Defect Indication) flows back *upstream*, telling
  the sender that its transmit path failed somewhere ahead;
- **CC** (Continuity Check) cells are a heartbeat: a source emits one
  per period, and a sliding-window sink declares loss of continuity
  (LOC) when the stream goes silent for longer than a configured
  interval.

Cell payload layout modelled here (48 bytes, shared by all four)::

    | OAM type/function (1) | indication (1) |
    | tag (4)               | source id (12) |
    | unused / 0x6A fill (28) | reserved (6 bits) + CRC-10 |

The 4-byte tag is the loopback correlation for loopback cells and a
monotone sequence number for CC cells; alarms leave it zero.  The
CRC-10 uses the same convention as the AAL3/4 SAR trailer: the last
10 bits hold the residue of the whole payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.aal.crc import crc10
from repro.atm.addressing import VcAddress
from repro.atm.cell import PAYLOAD_SIZE, PTI_OAM_END_TO_END, AtmCell

# OAM type (high nibble) / function (low nibble) bytes, per I.610.
_OAM_TYPE_FAULT_AIS = 0x10  # fault management (0001), AIS (0000)
_OAM_TYPE_FAULT_RDI = 0x11  # fault management (0001), RDI (0001)
_OAM_TYPE_FAULT_CC = 0x14  # fault management (0001), continuity check (0100)
_OAM_TYPE_FAULT_LOOPBACK = 0x18  # fault management (0001), loopback (1000)

OAM_TYPE_AIS = _OAM_TYPE_FAULT_AIS
OAM_TYPE_RDI = _OAM_TYPE_FAULT_RDI
OAM_TYPE_CC = _OAM_TYPE_FAULT_CC
OAM_TYPE_LOOPBACK = _OAM_TYPE_FAULT_LOOPBACK

_FILL = 0x6A
_SOURCE_ID_SIZE = 12

LOOP_ME = 0x01  #: loopback indication: please reflect this cell
LOOPED = 0x00  #: loopback indication: this is the reflection

AIS = "ais"  #: alarm kind: Alarm Indication Signal (flows downstream)
RDI = "rdi"  #: alarm kind: Remote Defect Indication (flows upstream)

_ALARM_TYPE_BY_KIND = {AIS: _OAM_TYPE_FAULT_AIS, RDI: _OAM_TYPE_FAULT_RDI}
_ALARM_KIND_BY_TYPE = {v: k for k, v in _ALARM_TYPE_BY_KIND.items()}


class OamFormatError(ValueError):
    """Malformed or corrupted OAM cell payload."""


def _seal(vc: VcAddress, type_byte: int, indication: int, tag: int, source_id: bytes) -> AtmCell:
    """Assemble the common 48-byte payload and stamp the CRC-10."""
    if not 0 <= tag <= 0xFFFFFFFF:
        raise OamFormatError("OAM tag field is 32 bits")
    if len(source_id) != _SOURCE_ID_SIZE:
        raise OamFormatError(f"source id is {_SOURCE_ID_SIZE} bytes")
    body = (
        bytes((type_byte, indication))
        + tag.to_bytes(4, "big")
        + source_id
        + bytes([_FILL]) * (PAYLOAD_SIZE - 2 - 4 - _SOURCE_ID_SIZE - 2)
        + bytes(2)  # reserved bits + zeroed CRC field
    )
    trailer = crc10(body)
    payload = body[:-2] + trailer.to_bytes(2, "big")
    return AtmCell(
        vpi=vc.vpi,
        vci=vc.vci,
        payload=payload,
        pti=PTI_OAM_END_TO_END,
    )


def _checked_payload(cell: AtmCell) -> bytes:
    if cell.is_user_cell:
        raise OamFormatError("not an OAM cell (PTI marks user data)")
    payload = cell.payload
    if crc10(payload) != 0:
        raise OamFormatError("OAM CRC-10 failed")
    return payload


@dataclass(frozen=True)
class LoopbackCell:
    """Decoded form of an F5 loopback cell."""

    vc: VcAddress
    correlation: int
    to_be_looped: bool
    source_id: bytes = bytes(_SOURCE_ID_SIZE)

    def encode(self) -> AtmCell:
        """Build the on-the-wire cell (PTI marks it as end-to-end OAM)."""
        if not 0 <= self.correlation <= 0xFFFFFFFF:
            raise OamFormatError("correlation tag is 32 bits")
        return _seal(
            self.vc,
            _OAM_TYPE_FAULT_LOOPBACK,
            LOOP_ME if self.to_be_looped else LOOPED,
            self.correlation,
            self.source_id,
        )

    @classmethod
    def decode(cls, cell: AtmCell) -> "LoopbackCell":
        """Parse an OAM cell; raises :class:`OamFormatError` on damage."""
        payload = _checked_payload(cell)
        if payload[0] != _OAM_TYPE_FAULT_LOOPBACK:
            raise OamFormatError(
                f"unsupported OAM type/function 0x{payload[0]:02x}"
            )
        indication = payload[1]
        if indication not in (LOOP_ME, LOOPED):
            raise OamFormatError(f"bad loopback indication {indication}")
        return cls(
            vc=VcAddress(cell.vpi, cell.vci),
            correlation=int.from_bytes(payload[2:6], "big"),
            to_be_looped=indication == LOOP_ME,
            source_id=payload[6 : 6 + _SOURCE_ID_SIZE],
        )

    def reflection(self) -> "LoopbackCell":
        """The cell the far end sends back (indication cleared)."""
        return LoopbackCell(
            vc=self.vc,
            correlation=self.correlation,
            to_be_looped=False,
            source_id=self.source_id,
        )


@dataclass(frozen=True)
class AlarmCell:
    """An AIS or RDI alarm cell on one virtual channel.

    ``kind`` is :data:`AIS` (downstream "path ahead of you is broken")
    or :data:`RDI` (upstream "your transmit path is broken").  The
    source id names the interface that detected the defect.
    """

    vc: VcAddress
    kind: str
    source_id: bytes = bytes(_SOURCE_ID_SIZE)

    def encode(self) -> AtmCell:
        type_byte = _ALARM_TYPE_BY_KIND.get(self.kind)
        if type_byte is None:
            raise OamFormatError(f"unknown alarm kind {self.kind!r}")
        return _seal(self.vc, type_byte, 0, 0, self.source_id)

    @classmethod
    def decode(cls, cell: AtmCell) -> "AlarmCell":
        payload = _checked_payload(cell)
        kind = _ALARM_KIND_BY_TYPE.get(payload[0])
        if kind is None:
            raise OamFormatError(
                f"unsupported OAM type/function 0x{payload[0]:02x}"
            )
        return cls(
            vc=VcAddress(cell.vpi, cell.vci),
            kind=kind,
            source_id=payload[6 : 6 + _SOURCE_ID_SIZE],
        )


@dataclass(frozen=True)
class ContinuityCell:
    """One continuity-check heartbeat cell."""

    vc: VcAddress
    sequence: int
    source_id: bytes = bytes(_SOURCE_ID_SIZE)

    def encode(self) -> AtmCell:
        return _seal(
            self.vc, _OAM_TYPE_FAULT_CC, 0, self.sequence & 0xFFFFFFFF, self.source_id
        )

    @classmethod
    def decode(cls, cell: AtmCell) -> "ContinuityCell":
        payload = _checked_payload(cell)
        if payload[0] != _OAM_TYPE_FAULT_CC:
            raise OamFormatError(
                f"unsupported OAM type/function 0x{payload[0]:02x}"
            )
        return cls(
            vc=VcAddress(cell.vpi, cell.vci),
            sequence=int.from_bytes(payload[2:6], "big"),
            source_id=payload[6 : 6 + _SOURCE_ID_SIZE],
        )


OamPdu = Union[LoopbackCell, AlarmCell, ContinuityCell]


def decode_oam(cell: AtmCell) -> OamPdu:
    """Demux an OAM cell by its type/function byte.

    Returns the decoded :class:`LoopbackCell`, :class:`AlarmCell` or
    :class:`ContinuityCell`; raises :class:`OamFormatError` for damage
    or unknown type bytes.
    """
    payload = _checked_payload(cell)
    type_byte = payload[0]
    if type_byte == _OAM_TYPE_FAULT_LOOPBACK:
        return LoopbackCell.decode(cell)
    if type_byte in _ALARM_KIND_BY_TYPE:
        return AlarmCell.decode(cell)
    if type_byte == _OAM_TYPE_FAULT_CC:
        return ContinuityCell.decode(cell)
    raise OamFormatError(f"unsupported OAM type/function 0x{type_byte:02x}")


class ContinuityCheckSource:
    """Emits one CC cell per period on a management VC.

    ``inject`` is any callable accepting an :class:`AtmCell`; for a
    NIC use ``nic.inject_cell``.  The source is a plain sim process:
    ``start()`` launches it, ``stop()`` retires it after the pending
    tick.
    """

    def __init__(
        self,
        sim,
        inject: Callable[[AtmCell], object],
        vc: VcAddress,
        period: float,
        source_id: bytes = bytes(_SOURCE_ID_SIZE),
    ) -> None:
        if period <= 0:
            raise ValueError("CC period must be positive")
        self.sim = sim
        self.inject = inject
        self.vc = vc
        self.period = period
        self.source_id = source_id
        self.cells_sent = 0
        self._sequence = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._pump())

    def stop(self) -> None:
        self._running = False

    def _pump(self):
        while self._running:
            cell = ContinuityCell(self.vc, self._sequence, self.source_id).encode()
            self._sequence = (self._sequence + 1) & 0xFFFFFFFF
            self.cells_sent += 1
            self.inject(cell)
            yield self.sim.timeout(self.period)


class ContinuityCheckSink:
    """Sliding-window loss-of-continuity detector.

    Call :meth:`observe` whenever a monitored cell arrives.  A
    watchdog process declares LOC exactly ``silence`` seconds after
    the last observation (so detection lag is bounded by the silence
    window plus one source period), and the first observation after
    LOC clears it.
    """

    def __init__(
        self,
        sim,
        silence: float,
        on_loc: Optional[Callable[[float], None]] = None,
        on_resume: Optional[Callable[[float], None]] = None,
        name: str = "cc-sink",
    ) -> None:
        if silence <= 0:
            raise ValueError("CC silence window must be positive")
        self.sim = sim
        self.silence = silence
        self.on_loc = on_loc
        self.on_resume = on_resume
        self.name = name
        self.cells_seen = 0
        self.loc_events = 0
        self.resumptions = 0
        self.in_loc = False
        self._last_seen = 0.0
        self._running = False

    def start(self) -> None:
        """Arm the watchdog; the grace period starts at the current time."""
        if self._running:
            return
        self._running = True
        self._last_seen = self.sim.now
        self.sim.process(self._watchdog())

    def stop(self) -> None:
        self._running = False

    def observe(self, cell: Optional[ContinuityCell] = None) -> None:
        """Record one heartbeat (or any other proof of continuity)."""
        self.cells_seen += 1
        self._last_seen = self.sim.now
        if self.in_loc:
            self.in_loc = False
            self.resumptions += 1
            if self.on_resume is not None:
                self.on_resume(self.sim.now)

    def _watchdog(self):
        while self._running:
            deadline = self._last_seen + self.silence
            if self.sim.now >= deadline:
                if not self.in_loc:
                    self.in_loc = True
                    self.loc_events += 1
                    if self.on_loc is not None:
                        self.on_loc(self.sim.now)
                yield self.sim.timeout(self.silence)
            else:
                yield self.sim.timeout(deadline - self.sim.now)
