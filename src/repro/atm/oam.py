"""OAM F5 loopback: the cell-level ping of the management plane.

I.610 defines fault-management cells that flow *inside* a virtual
channel (F5 flow) but are marked by the PTI as management traffic
(PTI = 0b101 for end-to-end).  The loopback function is the one every
operator used: send a loopback cell with the "to be looped" indication
set, the far end's hardware reflects it with the indication cleared,
and the round-trip time measures the path through both interfaces'
cell machinery -- *without* touching either host.

Cell payload layout modelled here (48 bytes)::

    | OAM type/function (1) | loopback indication (1) |
    | correlation tag (4)   | source id (12)          |
    | unused / 0x6A fill (28) | reserved (6 bits) + CRC-10 |

The CRC-10 uses the same convention as the AAL3/4 SAR trailer: the
last 10 bits hold the residue of the whole payload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aal.crc import crc10
from repro.atm.addressing import VcAddress
from repro.atm.cell import PAYLOAD_SIZE, PTI_OAM_END_TO_END, AtmCell

_OAM_TYPE_FAULT_LOOPBACK = 0x18  # fault management (0001), loopback (1000)
_FILL = 0x6A
_SOURCE_ID_SIZE = 12

LOOP_ME = 0x01  #: loopback indication: please reflect this cell
LOOPED = 0x00  #: loopback indication: this is the reflection


class OamFormatError(ValueError):
    """Malformed or corrupted OAM cell payload."""


@dataclass(frozen=True)
class LoopbackCell:
    """Decoded form of an F5 loopback cell."""

    vc: VcAddress
    correlation: int
    to_be_looped: bool
    source_id: bytes = bytes(_SOURCE_ID_SIZE)

    def encode(self) -> AtmCell:
        """Build the on-the-wire cell (PTI marks it as end-to-end OAM)."""
        if not 0 <= self.correlation <= 0xFFFFFFFF:
            raise OamFormatError("correlation tag is 32 bits")
        if len(self.source_id) != _SOURCE_ID_SIZE:
            raise OamFormatError(f"source id is {_SOURCE_ID_SIZE} bytes")
        body = (
            bytes((_OAM_TYPE_FAULT_LOOPBACK, LOOP_ME if self.to_be_looped else LOOPED))
            + self.correlation.to_bytes(4, "big")
            + self.source_id
            + bytes([_FILL]) * (PAYLOAD_SIZE - 2 - 4 - _SOURCE_ID_SIZE - 2)
            + bytes(2)  # reserved bits + zeroed CRC field
        )
        trailer = crc10(body)
        payload = body[:-2] + trailer.to_bytes(2, "big")
        return AtmCell(
            vpi=self.vc.vpi,
            vci=self.vc.vci,
            payload=payload,
            pti=PTI_OAM_END_TO_END,
        )

    @classmethod
    def decode(cls, cell: AtmCell) -> "LoopbackCell":
        """Parse an OAM cell; raises :class:`OamFormatError` on damage."""
        if cell.is_user_cell:
            raise OamFormatError("not an OAM cell (PTI marks user data)")
        payload = cell.payload
        if crc10(payload) != 0:
            raise OamFormatError("OAM CRC-10 failed")
        if payload[0] != _OAM_TYPE_FAULT_LOOPBACK:
            raise OamFormatError(
                f"unsupported OAM type/function 0x{payload[0]:02x}"
            )
        indication = payload[1]
        if indication not in (LOOP_ME, LOOPED):
            raise OamFormatError(f"bad loopback indication {indication}")
        return cls(
            vc=VcAddress(cell.vpi, cell.vci),
            correlation=int.from_bytes(payload[2:6], "big"),
            to_be_looped=indication == LOOP_ME,
            source_id=payload[6 : 6 + _SOURCE_ID_SIZE],
        )

    def reflection(self) -> "LoopbackCell":
        """The cell the far end sends back (indication cleared)."""
        return LoopbackCell(
            vc=self.vc,
            correlation=self.correlation,
            to_be_looped=False,
            source_id=self.source_id,
        )
