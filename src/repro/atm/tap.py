"""Cell taps: passive observation points for timing analysis.

ATM quality of service made *cell delay variation* (CDV) a first-class
metric: a constant-rate VC is only as good as the regularity of its
cell spacing after multiplexing.  A :class:`CellTap` sits between any
cell producer and its sink, recording per-VC arrival times without
disturbing them, and computes the era's standard measures:

- inter-cell gap statistics per VC,
- one-point CDV against a declared peak rate (the I.356 formulation:
  how early each cell is versus its nominal slot),
- aggregate counts for quick sanity checks.

Used in tests to prove that the transmit engine's pacing emits
contract-regular streams and that multiplex contention is what
introduces jitter.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.atm.addressing import VcAddress
from repro.atm.cell import AtmCell
from repro.sim.core import Simulator
from repro.sim.monitor import WelfordStat


class CellTap:
    """A transparent cell observer in front of *sink*."""

    def __init__(self, sim: Simulator, sink, name: str = "tap") -> None:
        self.sim = sim
        self.sink = sink
        self.name = name
        self.cells_seen = 0
        self._last_arrival: Dict[VcAddress, float] = {}
        self._gaps: Dict[VcAddress, WelfordStat] = {}

    def receive_cell(self, cell: AtmCell) -> None:
        now = self.sim.now
        vc = VcAddress(cell.vpi, cell.vci)
        self.cells_seen += 1
        last = self._last_arrival.get(vc)
        if last is not None:
            self._gaps.setdefault(vc, WelfordStat()).add(now - last)
        self._last_arrival[vc] = now
        receive = getattr(self.sink, "receive_cell", None)
        if receive is not None:
            receive(cell)
        else:
            self.sink(cell)

    __call__ = receive_cell

    # -- readouts -----------------------------------------------------------

    def gap_stats(self, vc: VcAddress) -> Optional[WelfordStat]:
        """Inter-cell gap statistics for *vc* (None if <2 cells seen)."""
        return self._gaps.get(vc)

    def jitter(self, vc: VcAddress) -> float:
        """Standard deviation of the VC's inter-cell gaps (seconds)."""
        stats = self._gaps.get(vc)
        return stats.stdev if stats is not None else 0.0

    def peak_to_peak_cdv(self, vc: VcAddress) -> float:
        """Max minus min inter-cell gap: the crude two-point CDV bound."""
        stats = self._gaps.get(vc)
        if stats is None or stats.n == 0:
            return 0.0
        return stats.maximum - stats.minimum

    def conforms_to_rate(
        self,
        vc: VcAddress,
        peak_rate_bps: float,
        tolerance: float = 1e-9,
    ) -> bool:
        """True if no gap undercut the nominal cell interval.

        The one-point conformance question a GCRA policer with zero
        tau would ask of the observed stream.
        """
        stats = self._gaps.get(vc)
        if stats is None:
            return True
        nominal = (53 * 8) / peak_rate_bps
        return stats.minimum >= nominal - tolerance

    def observed_vcs(self) -> list[VcAddress]:
        return list(self._last_arrival)
