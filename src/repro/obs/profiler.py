"""Cycle accounting: attribute live engine cycles to operations/phases.

The paper's T1/T2 tables budget the segmentation and reassembly inner
loops operation by operation.  The cost models in
:mod:`repro.nic.costs` *are* those budgets, but a table printed from a
dataclass only proves what was configured.  The
:class:`CycleProfiler` proves what *ran*: attached to the engines, it
observes every executed cell/PDU and attributes its cycles to the same
named operations via the cost models' ``cell_breakdown`` /
``pdu_breakdown`` maps -- so the T1/T2 tables it renders are measured
from a live simulation, and reproducing the configured budgets (16
cycles per TX middle cell, 22 per RX middle cell with the CAM) is an
end-to-end check that the pipeline charged exactly what the budget
says.

Operations also roll up into the paper's four analysis *phases*:

- **classify** -- header parsing and VCI lookup (CAM or software probe);
- **copy** -- data movement: SAR cell build, pointer advance,
  FIFO handshakes, context update, payload store;
- **crc** -- CRC accumulation (zero with the hardware assist fitted);
- **per-pdu** -- the once-per-PDU overheads: descriptor and completion
  traffic, context open/close, trailer work;
- **oam** -- management-cell handling (outside the paper's tables).

Attach with :func:`profile_interface`, or set ``engine.profiler``
directly; detach by setting it back to ``None``.  Like tracing, the
hot-path cost when detached is one attribute test per cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.nic.costs import CellPosition

#: Operation -> analysis phase (both directions share the namespace).
PHASE_OF_OP: Dict[str, str] = {
    # classify
    "header_parse": "classify",
    "vci_lookup_cam": "classify",
    "vci_lookup_software": "classify",
    # copy / data movement
    "cell_build": "copy",
    "buffer_advance": "copy",
    "fifo_push": "copy",
    "fifo_pop": "copy",
    "context_update": "copy",
    "payload_store": "copy",
    "sar_glue_extra": "copy",
    # crc
    "crc_per_cell": "crc",
    # per-PDU overhead
    "descriptor_fetch": "per-pdu",
    "dma_setup": "per-pdu",
    "header_template_load": "per-pdu",
    "completion_writeback": "per-pdu",
    "trailer_build": "per-pdu",
    "context_open": "per-pdu",
    "final_check": "per-pdu",
    "completion": "per-pdu",
    # management
    "oam_handling": "oam",
}

PHASES = ("classify", "copy", "crc", "per-pdu", "oam")


class _EngineLedger:
    """Per-direction accumulation: ops, phases, per-position cells."""

    __slots__ = ("op_cycles", "op_events", "position_cycles",
                 "position_cells", "pdus", "bursts", "burst_cells")

    def __init__(self) -> None:
        self.op_cycles: Dict[str, float] = {}
        self.op_events: Dict[str, int] = {}
        self.position_cycles: Dict[CellPosition, float] = {}
        self.position_cells: Dict[CellPosition, int] = {}
        self.pdus = 0
        #: Fast-path attribution: bursts replayed and cells they carried
        #: (zero on the scalar reference path; cycle-free bookkeeping,
        #: so ``reconcile`` is unaffected).
        self.bursts = 0
        self.burst_cells = 0

    def add_ops(self, ops: Dict[str, float]) -> float:
        total = 0.0
        for op, cycles in ops.items():
            self.op_cycles[op] = self.op_cycles.get(op, 0.0) + cycles
            self.op_events[op] = self.op_events.get(op, 0) + 1
            total += cycles
        return total

    @property
    def total_cycles(self) -> float:
        return sum(self.op_cycles.values())


class CycleProfiler:
    """Observes executed cells/PDUs and keeps the cycle ledgers."""

    def __init__(self) -> None:
        self._ledgers: Dict[str, _EngineLedger] = {
            "tx": _EngineLedger(),
            "rx": _EngineLedger(),
        }

    # -- recording (called from the engine loops) -------------------------

    def record_cell(
        self,
        engine: str,
        position: CellPosition,
        ops: Dict[str, float],
        extra: float = 0.0,
    ) -> None:
        """One cell executed; *ops* is the cost model's breakdown map.

        *extra* carries AAL-glue cycles outside the base model (booked
        as the ``sar_glue_extra`` op so the ledger still reconciles
        with the engine clock).
        """
        ledger = self._ledgers[engine]
        cycles = ledger.add_ops(ops)
        if extra:
            cycles += ledger.add_ops({"sar_glue_extra": extra})
        ledger.position_cycles[position] = (
            ledger.position_cycles.get(position, 0.0) + cycles
        )
        ledger.position_cells[position] = (
            ledger.position_cells.get(position, 0) + 1
        )

    def record_pdu(self, engine: str, ops: Dict[str, float]) -> None:
        """Once-per-PDU overhead executed (TX prologue/writeback)."""
        ledger = self._ledgers[engine]
        ledger.add_ops(ops)
        ledger.pdus += 1

    def record_ops(self, engine: str, ops: Dict[str, float]) -> None:
        """Cycles outside any cell/PDU budget (unknown-VC cells etc.)."""
        self._ledgers[engine].add_ops(ops)

    def record_oam(self, ops: Dict[str, float]) -> None:
        """One management cell handled by the RX engine."""
        self.record_ops("rx", ops)

    def record_burst(self, engine: str, n_cells: int) -> None:
        """One fast-path burst replayed (formation/flush attribution).

        Charges no cycles -- the per-cell ``record_cell`` calls inside
        the replay carry those -- but lets the P1 report show how much
        of the cell stream actually rode the fast path.
        """
        ledger = self._ledgers[engine]
        ledger.bursts += 1
        ledger.burst_cells += n_cells

    # -- queries ----------------------------------------------------------

    def cells_seen(self, engine: str) -> int:
        return sum(self._ledgers[engine].position_cells.values())

    def bursts_seen(self, engine: str) -> int:
        """Fast-path bursts replayed by one direction's engine."""
        return self._ledgers[engine].bursts

    def burst_cells_seen(self, engine: str) -> int:
        """Cells that moved inside fast-path bursts for one direction."""
        return self._ledgers[engine].burst_cells

    def cells_at(self, engine: str, position: CellPosition) -> int:
        """Cells executed at one position (0 if unseen)."""
        return self._ledgers[engine].position_cells.get(position, 0)

    def pdus_seen(self, engine: str) -> int:
        return self._ledgers[engine].pdus

    def total_cycles(self, engine: str) -> float:
        return self._ledgers[engine].total_cycles

    def cycles_per_cell(
        self, engine: str, position: CellPosition
    ) -> Optional[float]:
        """Mean measured cycles per cell at *position* (None if unseen)."""
        ledger = self._ledgers[engine]
        cells = ledger.position_cells.get(position, 0)
        if not cells:
            return None
        return ledger.position_cycles[position] / cells

    def op_ledger(self, engine: str) -> Dict[str, Tuple[int, float]]:
        """op -> (occurrences, total cycles) for one direction."""
        ledger = self._ledgers[engine]
        return {
            op: (ledger.op_events[op], ledger.op_cycles[op])
            for op in sorted(ledger.op_cycles)
        }

    def phase_cycles(self, engine: str) -> Dict[str, float]:
        """Phase -> total cycles for one direction."""
        totals: Dict[str, float] = {}
        for op, cycles in self._ledgers[engine].op_cycles.items():
            phase = PHASE_OF_OP.get(op, "other")
            totals[phase] = totals.get(phase, 0.0) + cycles
        return totals

    def reconcile(self, clock, engine: str) -> float:
        """Recorded-minus-booked cycle residue against an engine clock.

        Compares this profiler's ledger for *engine* against the
        :class:`~repro.nic.engine.EngineClock`'s ``cycles_by_tag``
        total.  Zero means every cycle the engine charged was
        attributed to a named operation.
        """
        return self.total_cycles(engine) - clock.total_cycles

    # -- rendering --------------------------------------------------------

    def budget_rows(self, engine: str) -> List[List[str]]:
        """Paper-style per-operation rows: op, phase, events, cycles."""
        rows = []
        for op, (events, cycles) in self.op_ledger(engine).items():
            per_event = cycles / events if events else 0.0
            rows.append(
                [
                    op,
                    PHASE_OF_OP.get(op, "other"),
                    str(events),
                    f"{per_event:g}",
                    f"{cycles:g}",
                ]
            )
        return rows

    def position_rows(self, engine: str) -> List[List[str]]:
        """Per-position rows: position, cells, measured cycles/cell."""
        ledger = self._ledgers[engine]
        rows = []
        for position in CellPosition:
            cells = ledger.position_cells.get(position, 0)
            if not cells:
                continue
            per_cell = ledger.position_cycles[position] / cells
            rows.append([position.value, str(cells), f"{per_cell:g}"])
        return rows

    def phase_rows(self) -> List[List[str]]:
        """Phase rows across both directions: phase, tx, rx, share."""
        tx = self.phase_cycles("tx")
        rx = self.phase_cycles("rx")
        grand = sum(tx.values()) + sum(rx.values())
        rows = []
        for phase in PHASES:
            tx_c = tx.get(phase, 0.0)
            rx_c = rx.get(phase, 0.0)
            if not tx_c and not rx_c:
                continue
            share = (tx_c + rx_c) / grand if grand else 0.0
            rows.append(
                [phase, f"{tx_c:g}", f"{rx_c:g}", f"{100 * share:.1f}%"]
            )
        return rows

    def render(self) -> str:
        """All three tables as text (the ``trace``/O1 report body)."""
        from repro.results.tables import format_table

        sections = []
        for engine, title in (
            ("tx", "T1' measured segmentation budget (cycles)"),
            ("rx", "T2' measured reassembly budget (cycles)"),
        ):
            if not self.cells_seen(engine) and not self.pdus_seen(engine):
                continue
            sections.append(
                format_table(
                    ["operation", "phase", "events", "cyc/event", "total"],
                    self.budget_rows(engine),
                    title=title,
                )
            )
            sections.append(
                format_table(
                    ["cell position", "cells", "cycles/cell"],
                    self.position_rows(engine),
                    title=f"{engine.upper()} per-position service cost",
                )
            )
        rows = self.phase_rows()
        if rows:
            sections.append(
                format_table(
                    ["phase", "tx cycles", "rx cycles", "share"],
                    rows,
                    title="Cycle attribution by phase",
                )
            )
        burst_rows = []
        for engine in ("tx", "rx"):
            bursts = self.bursts_seen(engine)
            if not bursts:
                continue
            carried = self.burst_cells_seen(engine)
            total = self.cells_seen(engine)
            share = carried / total if total else 0.0
            burst_rows.append(
                [
                    engine,
                    str(bursts),
                    str(carried),
                    f"{carried / bursts:.1f}",
                    f"{100 * share:.1f}%",
                ]
            )
        if burst_rows:
            sections.append(
                format_table(
                    ["engine", "bursts", "cells", "cells/burst", "of stream"],
                    burst_rows,
                    title="Fast-path burst attribution",
                )
            )
        return "\n\n".join(sections)


def profile_interface(
    nic, profiler: Optional[CycleProfiler] = None
) -> CycleProfiler:
    """Attach a profiler to both of an interface's engines."""
    if profiler is None:
        profiler = CycleProfiler()
    nic.tx_engine.profiler = profiler
    nic.rx_engine.profiler = profiler
    return profiler
