"""Cell-level lifecycle tracing: record, query, export.

The paper's evaluation is an instruction-level account of where every
cycle goes; this module gives the reproduction the matching *event*
account of where every cell goes.  A :class:`TraceRecorder` collects
timestamped :class:`TraceEvent` records as cells and PDUs move through
the pipeline -- posted, staged, segmented, framed, carried, admitted,
classified, reassembled, DMA'd, interrupted, delivered, or dropped with
a named reason -- and exports them as JSON-lines or as Chrome
``trace_event`` JSON that loads directly into Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

Instrumentation contract
------------------------

Every instrumented component (TX/RX engines, FIFOs, CAM, links, DMA,
interrupt controller, engine clocks) carries a ``trace`` attribute that
defaults to ``None``.  The hot paths guard each emission with a single
``if self.trace is not None`` test, so an uninstrumented simulation
pays one attribute load + comparison per would-be event -- in practice
unmeasurable (see ``tests/test_obs.py``).  Attaching a recorder
with ``enabled=False`` additionally short-circuits inside
:meth:`TraceRecorder.emit`, so tracing can be toggled mid-run without
re-wiring.

Identity
--------

PDUs are identified by the transmit descriptor's ``pdu_id`` (see
:mod:`repro.nic.descriptors`); cells are tagged at segmentation time
with a monotonically increasing ``cell_id`` in ``cell.meta`` and keep
it across the wire, so a single id follows one cell from the transmit
FIFO to its receive-side fate.  Cells that originate outside a traced
transmit engine (synthetic wire sources) simply carry no id.

Event taxonomy
--------------

Every event name the pipeline can emit is declared in
:data:`EVENT_TAXONOMY` (name -> description) and every drop reason in
:data:`DROP_REASONS`; ``docs/OBSERVABILITY.md`` is the narrative
version.  Drop events share the names ``cell.drop`` / ``pdu.drop``
with a ``reason`` argument drawn from :data:`DROP_REASONS`, so "every
cell death has a named cause" is a greppable property of a trace.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Union

# ---------------------------------------------------------------------------
# taxonomy
# ---------------------------------------------------------------------------

#: Every event name the instrumented pipeline can emit.
EVENT_TAXONOMY: Dict[str, str] = {
    # -- transmit path ----------------------------------------------------
    "tx.pdu.posted": "TX engine took a descriptor from the host ring",
    "tx.pdu.staged": "PDU DMA'd from host memory into adaptor buffer memory",
    "tx.pdu.bufstall": "TX engine stalled waiting for adaptor buffer memory",
    "tx.cell.sar": "segmentation produced one cell (position annotated)",
    "tx.cell.paced": "cell delayed by the VC's peak-rate pacing contract",
    "tx.pdu.done": "completion status written back to the host ring",
    # -- FIFOs (both directions; the actor names the FIFO) ----------------
    "fifo.enq": "cell accepted into a cell FIFO (occupancy annotated)",
    "fifo.deq": "cell popped from a cell FIFO (occupancy annotated)",
    # -- the wire ---------------------------------------------------------
    "link.cell.sent": "cell began serializing onto the link",
    "link.cell.delivered": "cell arrived at the link's sink",
    # -- receive path -----------------------------------------------------
    "rx.frame.epd": "EPD refused a whole frame at admission (pressure)",
    "rx.frame.truncated": "PPD began discarding a holed frame's remainder",
    "rx.cam.hit": "CAM matched the cell's VC to a reassembly context",
    "rx.cam.miss": "CAM had no entry for the cell's VC",
    "rx.cam.evict": "LRU policy displaced an entry to program a new VC",
    "rx.cell.oam": "management cell consumed by the OAM unit",
    "rx.cell.sar": "cell absorbed into reassembly state (position annotated)",
    "rx.pdu.done": "reassembly completed a PDU (CRC/length verdict ok)",
    # -- DMA (both directions; the actor names the engine) ----------------
    "dma.start": "a DMA engine began moving bytes across the host bus",
    "dma.done": "the DMA transfer completed (latency annotated)",
    # -- host -------------------------------------------------------------
    "irq.raised": "device asserted the interrupt line",
    "irq.delivered": "interrupt delivered to the CPU (batch size annotated)",
    "host.pdu.delivered": "OS receive path done; user callback ran",
    # -- engine execution (exported as Perfetto duration slices) ----------
    "engine.work": "engine executed a cycle budget (tag + cycles annotated)",
    "engine.stall": "engine absorbed an injected stall window",
    # -- fast path (repro.atm.burst; see docs/PERFORMANCE.md) -------------
    "burst.form": "producer batched a cell run into one burst (n_cells)",
    "burst.flush": "consumer popped a whole burst from a FIFO (n_cells)",
    # -- drops (reason argument from DROP_REASONS) ------------------------
    "cell.drop": "a cell died; 'reason' names the cause",
    "pdu.drop": "a PDU died; 'reason' names the cause",
    # -- reassembly timers ------------------------------------------------
    "rx.context.evicted": "reassembly context evicted by the quota",
    # -- fault management (repro.resilience) ------------------------------
    "oam.cc.loc": "continuity-check sink declared loss of continuity",
    "oam.cc.resumed": "continuity restored at the sink after LOC",
    "oam.alarm.raised": "supervisor injected an alarm cell (kind annotated)",
    "oam.alarm.received": "far-end AIS/RDI alarm cell consumed (kind annotated)",
    "oam.alarm.cleared": "alarm condition cleared by the supervisor",
    "oam.ping.timeout": "loopback correlation reaped without a reply",
    "link.supervisor.state": "link supervisor transition (from/to annotated)",
    # -- signalling recovery ----------------------------------------------
    "sig.retransmit": "signalling message retransmitted (type + attempt annotated)",
    "sig.call.timeout": "call abandoned after retry exhaustion",
    "sig.call.restored": "supervisor-driven re-establishment of an alarmed call",
    # -- traffic management (repro.tm; see docs/TRAFFIC.md) ---------------
    "rm.cell.sent": "ABR source emitted a forward RM cell (CCR annotated)",
    "rm.cell.marked": "switch stamped an explicit rate into an RM cell",
    "rm.cell.turnaround": "destination reflected a forward RM cell (CI annotated)",
    "abr.rate.update": "ABR source adjusted its allowed cell rate",
    "port.efci": "output port set EFCI on a user cell (queue pressure)",
    "cac.admit": "call admission booked a SETUP's traffic contract",
    "cac.reject": "call admission refused a SETUP (cause annotated)",
}

#: Every value the ``reason`` argument of a drop event can take.  The
#: first group mirrors the conservation ledger of
#: :mod:`repro.faults.audit`; the second group is the reassembly
#: failure taxonomy of :class:`repro.aal.interface.ReassemblyFailure`.
DROP_REASONS: Dict[str, str] = {
    "link_lost": "dropped by the link's loss model",
    "hec": "uncorrectable header rejected by the framer's HEC check",
    "epd": "refused at admission by Early Packet Discard",
    "ppd": "discarded mid-frame by Partial Packet Discard",
    "fifo_overflow": "hard receive-FIFO overflow",
    "unknown_vc": "cell for a VC never opened (CAM/table miss)",
    "no_adaptor_buffer": "adaptor buffer memory exhausted",
    "no_host_buffer": "host buffer pool exhausted at completion",
    # reassembly verdicts (PDU-level, cells counted with the PDU)
    "crc": "trailer CRC mismatch",
    "length": "trailer length field inconsistent",
    "sequence": "AAL3/4 sequence-number discontinuity",
    "tag-mismatch": "AAL3/4 BTag != ETag",
    "protocol": "segment-type violation",
    "oversize": "PDU exceeded the maximum reassembly size",
    "timeout": "reassembly timer expired on a partial PDU",
    "no-context": "cell with no reassembly context",
    "quota": "context evicted to honour the context quota",
    # traffic management (switch output ports; repro.tm)
    "clp": "CLP=1 cell discarded first under output-port pressure",
    "port_full": "output-port buffer full (tail drop)",
}


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence in a cell's or PDU's life."""

    ts: float  #: simulation time, seconds
    name: str  #: an :data:`EVENT_TAXONOMY` key
    actor: str  #: the component that emitted it (engine, FIFO, link...)
    cell_id: Optional[int] = None
    pdu_id: Optional[int] = None
    vc: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        record: Dict[str, Any] = {"ts": self.ts, "name": self.name}
        if self.actor:
            record["actor"] = self.actor
        if self.cell_id is not None:
            record["cell_id"] = self.cell_id
        if self.pdu_id is not None:
            record["pdu_id"] = self.pdu_id
        if self.vc is not None:
            record["vc"] = self.vc
        if self.args:
            record["args"] = self.args
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        record = json.loads(line)
        return cls(
            ts=record["ts"],
            name=record["name"],
            actor=record.get("actor", ""),
            cell_id=record.get("cell_id"),
            pdu_id=record.get("pdu_id"),
            vc=record.get("vc"),
            args=record.get("args", {}),
        )


# ---------------------------------------------------------------------------
# recorder
# ---------------------------------------------------------------------------


class TraceRecorder:
    """Collects :class:`TraceEvent` records from instrumented components.

    Attach with :meth:`repro.nic.nic.HostNetworkInterface.attach_trace`
    (or by assigning any component's ``trace`` attribute), then query
    in memory or export::

        recorder = TraceRecorder(sim)
        nic.attach_trace(recorder)
        ...run...
        recorder.export_chrome("trace.json")     # open in Perfetto
        recorder.export_jsonl("trace.jsonl")     # grep/jq-friendly

    The recorder is deliberately dumb on the hot path: one ``enabled``
    test, one object construction, one list append per event.
    """

    def __init__(self, sim, enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._cell_ids = itertools.count(1)

    # -- recording --------------------------------------------------------

    def emit(
        self,
        name: str,
        actor: str = "",
        cell=None,
        cell_id: Optional[int] = None,
        pdu_id: Optional[int] = None,
        vc=None,
        ts: Optional[float] = None,
        **args: Any,
    ) -> None:
        """Record one event (no-op while disabled).

        *cell* may be an :class:`~repro.atm.cell.AtmCell`; its ``meta``
        ids and VC fill any identity fields not given explicitly.

        *ts* overrides the timestamp (default: current simulation time).
        The fast path uses it to stamp per-cell events at their virtual
        replay times, so a burst-mode trace carries the same per-cell
        timestamps the scalar path would -- note the recorder appends in
        emission order, so fast-path traces are not globally
        time-sorted (sort on ``ts`` before timeline analysis).
        """
        if not self.enabled:
            return
        if name not in EVENT_TAXONOMY:
            raise ValueError(
                f"{name!r} is not in EVENT_TAXONOMY; declare new event "
                "names there (and in docs/OBSERVABILITY.md) first"
            )
        if cell is not None:
            meta = cell.meta
            if cell_id is None:
                cell_id = meta.get("cell_id")
            if pdu_id is None:
                pdu_id = meta.get("pdu_id")
            if vc is None:
                vc = f"{cell.vpi}.{cell.vci}"
        self.events.append(
            TraceEvent(
                ts=self.sim.now if ts is None else ts,
                name=name,
                actor=actor,
                cell_id=cell_id,
                pdu_id=pdu_id,
                vc=None if vc is None else str(vc),
                args=args,
            )
        )

    def tag_cell(self, cell) -> int:
        """Assign (or return) the cell's trace identity."""
        cell_id = cell.meta.get("cell_id")
        if cell_id is None:
            cell_id = next(self._cell_ids)
            cell.meta["cell_id"] = cell_id
        return cell_id

    # -- lifecycle --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()

    # -- queries ----------------------------------------------------------

    def by_name(self, name: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.name == name]

    def for_cell(self, cell_id: int) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.cell_id == cell_id]

    def for_pdu(self, pdu_id: int) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.pdu_id == pdu_id]

    def drop_reasons(self) -> Dict[str, int]:
        """Histogram of drop causes seen in the trace (cells + PDUs)."""
        reasons: Dict[str, int] = {}
        for ev in self.events:
            if ev.name in ("cell.drop", "pdu.drop"):
                why = ev.args.get("reason", "unnamed")
                reasons[why] = reasons.get(why, 0) + 1
        return reasons

    # -- exporters --------------------------------------------------------

    def export_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """One JSON object per line; returns the event count written."""
        return write_jsonl(self.events, destination)

    def export_chrome(self, destination: Union[str, IO[str]]) -> int:
        """Chrome ``trace_event`` JSON, loadable by Perfetto."""
        return write_chrome_trace(self.events, destination)


# ---------------------------------------------------------------------------
# serialization helpers (usable on any iterable of events)
# ---------------------------------------------------------------------------


def _open_sink(destination: Union[str, IO[str]]):
    if isinstance(destination, str):
        return open(destination, "w", encoding="utf-8"), True
    return destination, False


def write_jsonl(
    events: Iterable[TraceEvent], destination: Union[str, IO[str]]
) -> int:
    sink, owned = _open_sink(destination)
    try:
        count = 0
        for ev in events:
            sink.write(ev.to_json())
            sink.write("\n")
            count += 1
        return count
    finally:
        if owned:
            sink.close()


def read_jsonl(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """Parse a JSONL trace back into :class:`TraceEvent` records."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    return [TraceEvent.from_json(line) for line in lines if line.strip()]


def write_chrome_trace(
    events: Iterable[TraceEvent], destination: Union[str, IO[str]]
) -> int:
    """Render events in the Chrome ``trace_event`` format.

    Mapping choices:

    - every actor becomes a named *thread* (one swimlane per component);
    - ``engine.work`` events carry a ``dur`` argument and become
      complete slices (``ph: "X"``), so engine execution renders as
      nested duration bars;
    - ``fifo.enq``/``fifo.deq`` additionally emit a counter track
      (``ph: "C"``) of the FIFO's occupancy;
    - everything else is an instant event (``ph: "i"``).

    Timestamps are exported in microseconds, the unit the format
    specifies.
    """
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []

    def tid_of(actor: str) -> int:
        tid = tids.get(actor)
        if tid is None:
            tid = len(tids) + 1
            tids[actor] = tid
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": actor or "sim"},
                }
            )
        return tid

    count = 0
    for ev in events:
        count += 1
        ts_us = ev.ts * 1e6
        args: Dict[str, Any] = dict(ev.args)
        if ev.cell_id is not None:
            args["cell_id"] = ev.cell_id
        if ev.pdu_id is not None:
            args["pdu_id"] = ev.pdu_id
        if ev.vc is not None:
            args["vc"] = ev.vc
        tid = tid_of(ev.actor)
        if ev.name == "engine.work" and "dur" in ev.args:
            trace_events.append(
                {
                    "name": str(args.get("tag", "work")),
                    "cat": "engine",
                    "ph": "X",
                    "ts": ts_us,
                    "dur": ev.args["dur"] * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
            continue
        trace_events.append(
            {
                "name": ev.name,
                "cat": ev.name.split(".")[0],
                "ph": "i",
                "ts": ts_us,
                "pid": 1,
                "tid": tid,
                "s": "t",
                "args": args,
            }
        )
        if ev.name in ("fifo.enq", "fifo.deq") and "occupancy" in ev.args:
            trace_events.append(
                {
                    "name": f"{ev.actor} occupancy",
                    "ph": "C",
                    "ts": ts_us,
                    "pid": 1,
                    "tid": tid,
                    "args": {"cells": ev.args["occupancy"]},
                }
            )

    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.obs.trace",
            "paper": "A Host-Network Interface Architecture for ATM "
            "(SIGCOMM '91)",
        },
    }
    sink, owned = _open_sink(destination)
    try:
        json.dump(document, sink)
    finally:
        if owned:
            sink.close()
    return count
