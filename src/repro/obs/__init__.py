"""Observability for the host-interface pipeline: trace, metrics, cycles.

The simulation answers the paper's questions with end-of-run numbers;
this package makes the *run itself* observable, three ways:

- :mod:`repro.obs.trace` -- :class:`TraceRecorder` tags every cell and
  PDU with an id and records timestamped lifecycle events (SAR, FIFO
  handshakes, CAM lookups, DMA, interrupts, delivery, and every drop
  with its reason).  Export as JSONL or as a Chrome ``trace_event``
  file that loads straight into Perfetto.
- :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` puts one
  namespace over the pipeline's live counters and gauges (NIC stats,
  FIFO and buffer-memory occupancy, engine utilisation, the fault
  auditor's conservation ledger), with periodic sampling into time
  series and CSV/JSON export.
- :mod:`repro.obs.profiler` -- :class:`CycleProfiler` attributes every
  engine cycle to the cost models' named operations and the paper's
  analysis phases, rendering measured T1/T2 budget tables from a live
  run.

All hooks are duck-typed attributes (``component.trace``,
``engine.profiler``) that default to ``None``: the pipeline packages
never import this one, and a disabled hook costs a single attribute
test on the hot path.

Usage -- instrument any testbed in three lines each::

    from repro.obs import (
        CycleProfiler, MetricsRegistry, TraceRecorder,
        instrument, profile_interface,
    )

    recorder = TraceRecorder(sim)
    nic.attach_trace(recorder)            # every component now emits

    registry = MetricsRegistry(sim)
    instrument(registry, nic)             # standard counter/gauge set
    registry.start_sampling(period=1e-4)

    profiler = profile_interface(nic)     # cycle attribution

    sim.run(until=0.02)
    recorder.export_chrome("trace.json")  # load at ui.perfetto.dev
    registry.to_csv("metrics.csv")
    print(profiler.render())              # measured T1'/T2' tables

See ``docs/OBSERVABILITY.md`` for the full event taxonomy and exporter
formats, and ``python -m repro trace`` for the command-line entry
point.
"""

from repro.obs.metrics import (
    INSTRUMENT_DISPATCH,
    KINDS,
    TOPK_DEFAULT,
    Metric,
    MetricsRegistry,
    instrument,
    instrument_abr,
    instrument_auditor,
    instrument_cac,
    instrument_erica,
    instrument_executor,
    instrument_interface,
    instrument_link,
    instrument_port,
    instrument_signalling,
    instrument_supervisor,
    topk_book,
)
from repro.obs.profiler import (
    PHASE_OF_OP,
    PHASES,
    CycleProfiler,
    profile_interface,
)
from repro.obs.trace import (
    DROP_REASONS,
    EVENT_TAXONOMY,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "DROP_REASONS",
    "EVENT_TAXONOMY",
    "INSTRUMENT_DISPATCH",
    "KINDS",
    "PHASES",
    "PHASE_OF_OP",
    "TOPK_DEFAULT",
    "CycleProfiler",
    "Metric",
    "MetricsRegistry",
    "TraceEvent",
    "TraceRecorder",
    "instrument",
    "instrument_abr",
    "instrument_auditor",
    "instrument_cac",
    "instrument_erica",
    "instrument_executor",
    "instrument_interface",
    "instrument_link",
    "instrument_port",
    "instrument_signalling",
    "instrument_supervisor",
    "profile_interface",
    "read_jsonl",
    "topk_book",
    "write_chrome_trace",
    "write_jsonl",
]
