"""Unified metrics: named counters/gauges/histograms over live objects.

`NicStats` is an end-of-run snapshot; the FIFOs, buffer memory, engine
clocks and the fault auditor's conservation ledger each keep their own
ad-hoc tallies.  A :class:`MetricsRegistry` puts one namespace over all
of them: every metric is a *name* bound to a zero-argument reader over
the live object, with a declared kind (``counter`` / ``gauge`` /
``histogram``) and unit.  Because readers observe the live objects,
registration is free on the hot path -- nothing in the pipeline knows
the registry exists.

On top of the namespace the registry offers:

- :meth:`MetricsRegistry.snapshot` -- read every metric now;
- :meth:`MetricsRegistry.start_sampling` -- a simulation process that
  snapshots every *period* seconds into per-metric
  :class:`~repro.sim.monitor.SeriesRecorder` time series;
- :meth:`MetricsRegistry.to_json` / :meth:`MetricsRegistry.to_csv` --
  export the snapshot and the sampled series.

:func:`instrument` registers the standard metric set for any supported
pipeline object -- it type-dispatches on the object's class through
:data:`INSTRUMENT_DISPATCH`, so one call replaces the historical
``instrument_interface`` / ``instrument_link`` / ... family (kept as
thin deprecated aliases).  See ``docs/OBSERVABILITY.md`` for the full
name list and ``docs/SCALE.md`` for the cardinality rules.

Per-VC breakdowns (port occupancy, session goodput) are exported as
*bounded* top-K books via :func:`topk_book`: the K largest entries plus
an ``_other`` aggregate and a ``_keys`` cardinality count, so registry
size stays O(K) no matter how many thousands of VCs churn through a
run (see ``docs/SCALE.md``).
"""

from __future__ import annotations

import functools
import json
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, IO, List, Mapping, Optional, Union

from repro.sim.monitor import SeriesRecorder

#: Legal values for :attr:`Metric.kind`.
KINDS = ("counter", "gauge", "histogram")


@dataclass
class Metric:
    """One named observable: a reader over a live object."""

    name: str
    read: Callable[[], Any]
    kind: str = "gauge"
    unit: str = ""
    description: str = ""

    def value(self) -> Any:
        return self.read()


class MetricsRegistry:
    """A namespace of metrics with snapshotting and periodic sampling."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._metrics: Dict[str, Metric] = {}
        self.series: Dict[str, SeriesRecorder] = {}
        self._sampler = None
        self.samples_taken = 0

    # -- registration -----------------------------------------------------

    def register(
        self,
        name: str,
        read: Callable[[], Any],
        kind: str = "gauge",
        unit: str = "",
        description: str = "",
    ) -> Metric:
        if kind not in KINDS:
            raise ValueError(f"unknown metric kind {kind!r} (use {KINDS})")
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        metric = Metric(name, read, kind, unit, description)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, read, unit: str = "", description: str = ""):
        return self.register(name, read, "counter", unit, description)

    def gauge(self, name: str, read, unit: str = "", description: str = ""):
        return self.register(name, read, "gauge", unit, description)

    def histogram(self, name: str, read, unit: str = "", description: str = ""):
        """Register a reader returning a summary dict (mean/max/quantiles)."""
        return self.register(name, read, "histogram", unit, description)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    # -- reading ----------------------------------------------------------

    def read(self, name: str) -> Any:
        return self._metrics[name].value()

    def snapshot(self) -> Dict[str, Any]:
        """Read every registered metric right now."""
        return {name: m.value() for name, m in sorted(self._metrics.items())}

    # -- periodic sampling ------------------------------------------------

    def sample(self) -> None:
        """Take one time-stamped sample of every scalar metric."""
        now = self.sim.now
        self.samples_taken += 1
        for name, metric in self._metrics.items():
            value = metric.value()
            if not isinstance(value, (int, float)):
                continue  # histograms/dicts are snapshot-only
            series = self.series.get(name)
            if series is None:
                series = self.series[name] = SeriesRecorder(name)
            series.record(now, float(value))

    def start_sampling(self, period: float) -> None:
        """Launch a sim process sampling every *period* seconds."""
        if period <= 0:
            raise ValueError("sampling period must be positive")
        if self._sampler is not None:
            raise RuntimeError("sampling already started")

        def _pump():
            while True:
                self.sample()
                yield self.sim.timeout(period)

        self._sampler = self.sim.process(_pump())

    # -- export -----------------------------------------------------------

    def to_json(
        self, destination: Optional[Union[str, IO[str]]] = None
    ) -> str:
        """Snapshot + sampled series as a JSON document."""
        document = {
            "now": self.sim.now,
            "metrics": [
                {
                    "name": m.name,
                    "kind": m.kind,
                    "unit": m.unit,
                    "description": m.description,
                    "value": m.value(),
                }
                for m in (self._metrics[n] for n in self.names())
            ],
            "series": {
                name: {"times": s.times, "values": s.values}
                for name, s in sorted(self.series.items())
            },
        }
        text = json.dumps(document, indent=2, sort_keys=True)
        if destination is not None:
            if isinstance(destination, str):
                with open(destination, "w", encoding="utf-8") as handle:
                    handle.write(text)
            else:
                destination.write(text)
        return text

    def to_csv(
        self, destination: Optional[Union[str, IO[str]]] = None
    ) -> str:
        """Sampled time series as CSV: one time column, one per metric.

        Sampling happens for every metric at the same instants, so the
        series share a time base; any metric registered after sampling
        began is right-aligned with empty leading fields.
        """
        names = sorted(self.series)
        if not names:
            text = "t\n"
        else:
            times = self.series[names[0]].times
            for name in names:
                if len(self.series[name].times) > len(times):
                    times = self.series[name].times
            rows = ["t," + ",".join(names)]
            for i, t in enumerate(times):
                fields = [f"{t:.9f}"]
                for name in names:
                    series = self.series[name]
                    offset = len(times) - len(series.times)
                    j = i - offset
                    fields.append(f"{series.values[j]:g}" if j >= 0 else "")
                rows.append(",".join(fields))
            text = "\n".join(rows) + "\n"
        if destination is not None:
            if isinstance(destination, str):
                with open(destination, "w", encoding="utf-8") as handle:
                    handle.write(text)
            else:
                destination.write(text)
        return text


# ---------------------------------------------------------------------------
# bounded per-key books
# ---------------------------------------------------------------------------

#: Default K for bounded per-VC books.  Small enough that a registry
#: over a 2,048-VC churn stays readable; large enough to show the
#: heavy hitters fairness analyses care about.
TOPK_DEFAULT = 8


def topk_book(values: Mapping[Any, float], k: int = TOPK_DEFAULT) -> Dict[str, float]:
    """Bound a per-key breakdown to the K largest entries.

    Returns the top-K items (by value, ties broken by key string for
    determinism) plus two aggregate entries: ``_other`` -- the summed
    value of everything not shown -- and ``_keys`` -- the full
    cardinality of the input book.  The result has at most ``k + 2``
    entries regardless of how many VCs the run multiplexes, which is
    what keeps metric cardinality O(K) instead of O(total VCs).
    """
    if k < 1:
        raise ValueError("topk_book needs k >= 1")
    items = sorted(values.items(), key=lambda kv: (-float(kv[1]), str(kv[0])))
    book: Dict[str, float] = {str(key): float(val) for key, val in items[:k]}
    book["_other"] = float(sum(float(val) for _, val in items[k:]))
    book["_keys"] = float(len(items))
    return book


# ---------------------------------------------------------------------------
# standard instrumentations
# ---------------------------------------------------------------------------


def _instrument_interface(
    registry: MetricsRegistry, nic, prefix: Optional[str] = None
) -> None:
    """Register the standard metric set for a `HostNetworkInterface`.

    Covers every live pipeline counter (the superset of what a
    `NicStats` snapshot flattens) plus the gauges a snapshot cannot
    carry: FIFO occupancy/fill, adaptor buffer-memory fill, engine
    utilisation, and DMA backlogs.
    """
    p = f"{prefix or nic.name}."
    tx, rx = nic.tx_engine, nic.rx_engine

    def count_of(counter):
        return lambda: counter.count

    for name, counter, description in (
        ("tx.pdus_sent", tx.pdus_sent, "PDUs segmented and completed"),
        ("tx.cells_sent", tx.cells_sent, "cells pushed into the TX FIFO"),
        ("tx.pacing_stalls", tx.pacing_stalls, "cells delayed by pacing"),
        (
            "tx.buffer_stalls",
            tx.pdus_stalled_for_buffer,
            "PDUs that waited for adaptor buffer memory",
        ),
        ("rx.cells_received", rx.cells_received, "cells popped by RX engine"),
        ("rx.oam_cells", rx.oam_cells, "management cells consumed"),
        ("rx.cells_unknown_vc", rx.cells_unknown_vc, "cells for unopened VCs"),
        (
            "rx.cells_no_adaptor_buffer",
            rx.cells_no_buffer,
            "cells lost to adaptor buffer exhaustion",
        ),
        ("rx.cells_hec_discarded", rx.cells_hec_discarded, "HEC rejects"),
        ("rx.cells_epd_discarded", rx.cells_epd_discarded, "EPD discards"),
        ("rx.cells_ppd_discarded", rx.cells_ppd_discarded, "PPD discards"),
        (
            "rx.frames_discarded_early",
            rx.frames_discarded_early,
            "whole frames refused by EPD",
        ),
        ("rx.frames_truncated", rx.frames_truncated, "frames PPD truncated"),
        ("rx.pdus_delivered", rx.pdus_delivered, "PDUs DMA'd to the host"),
        (
            "rx.cells_delivered_to_host",
            rx.cells_delivered_to_host,
            "cells riding delivered PDUs",
        ),
        (
            "rx.pdus_no_host_buffer",
            rx.pdus_no_host_buffer,
            "completed PDUs dropped for lack of a host buffer",
        ),
        ("irq.raised", nic.interrupts.raised, "device interrupt assertions"),
        (
            "irq.delivered",
            nic.interrupts.delivered,
            "interrupt deliveries (post-coalescing)",
        ),
    ):
        registry.counter(
            p + name, count_of(counter), unit="events", description=description
        )

    registry.gauge(
        p + "tx.throughput_mbps",
        lambda: tx.throughput.megabits_per_second(),
        unit="Mb/s",
        description="TX goodput since start",
    )
    registry.gauge(
        p + "rx.throughput_mbps",
        lambda: rx.throughput.megabits_per_second(),
        unit="Mb/s",
        description="RX goodput since start",
    )
    registry.gauge(
        p + "tx_fifo.occupancy",
        lambda: len(nic.tx_fifo),
        unit="cells",
        description="instantaneous TX FIFO depth",
    )
    registry.gauge(
        p + "rx_fifo.occupancy",
        lambda: len(nic.rx_fifo),
        unit="cells",
        description="instantaneous RX FIFO depth",
    )
    registry.gauge(
        p + "rx_fifo.fill",
        lambda: nic.rx_fifo.fill_fraction,
        unit="fraction",
        description="RX FIFO fill fraction (EPD threshold input)",
    )
    registry.counter(
        p + "rx_fifo.overflows",
        lambda: nic.rx_fifo.overflows.count,
        unit="cells",
        description="hard RX FIFO drops",
    )
    registry.gauge(
        p + "bufmem.fill",
        lambda: nic.buffer_memory.fill_fraction,
        unit="fraction",
        description="adaptor buffer memory fill fraction",
    )
    registry.gauge(
        p + "bufmem.used",
        lambda: nic.buffer_memory.used_cells,
        unit="cells",
        description="adaptor buffer memory cells in use",
    )
    registry.gauge(
        p + "tx_engine.utilization",
        lambda: nic.tx_clock.utilization(),
        unit="fraction",
        description="TX engine busy fraction",
    )
    registry.gauge(
        p + "rx_engine.utilization",
        lambda: nic.rx_clock.utilization(),
        unit="fraction",
        description="RX engine busy fraction",
    )
    if nic.cam is not None:
        cam = nic.cam
        registry.counter(
            p + "cam.hits",
            lambda: cam.hits,
            unit="lookups",
            description="CAM associative match hits",
        )
        registry.counter(
            p + "cam.misses",
            lambda: cam.misses,
            unit="lookups",
            description="CAM lookup misses (incl. forced)",
        )
        registry.counter(
            p + "cam.evictions",
            lambda: cam.evictions,
            unit="entries",
            description="entries displaced by the LRU policy",
        )
        registry.counter(
            p + "cam.capacity_misses",
            lambda: cam.capacity_misses,
            unit="lookups",
            description="misses for VCs evicted under capacity pressure",
        )
        registry.gauge(
            p + "cam.occupancy",
            lambda: len(cam),
            unit="entries",
            description="programmed CAM entries right now",
        )
    registry.gauge(
        p + "dma.tx_backlog",
        lambda: nic.tx_dma.backlog,
        unit="transfers",
        description="TX DMA transfers in flight or queued",
    )
    registry.gauge(
        p + "dma.rx_backlog",
        lambda: nic.rx_dma.backlog,
        unit="transfers",
        description="RX DMA transfers in flight or queued",
    )


def _instrument_link(
    registry: MetricsRegistry, link, prefix: str = "link."
) -> None:
    """Register the wire's conservation counters."""
    registry.counter(
        prefix + "cells_sent",
        lambda: link.cells_sent.count,
        unit="cells",
        description="cells serialized onto the link",
    )
    registry.counter(
        prefix + "cells_delivered",
        lambda: link.cells_delivered.count,
        unit="cells",
        description="cells handed to the link's sink",
    )
    registry.counter(
        prefix + "cells_lost",
        lambda: link.cells_lost.count,
        unit="cells",
        description="cells destroyed by the loss model",
    )


def _instrument_supervisor(
    registry: MetricsRegistry, supervisor, prefix: str = "sup."
) -> None:
    """Expose a :class:`repro.resilience.LinkSupervisor`'s counters.

    The state gauge reports the enum's value string; the counters are
    the alarm-lifecycle quantities R2 and the campaign dashboards
    chart.
    """
    registry.gauge(
        prefix + "state",
        lambda: supervisor.state.value,
        description="link supervisor state (up/degraded/down/recovering)",
    )
    for name, description in (
        ("transitions", "state-machine transitions"),
        ("loc_events", "loss-of-continuity declarations"),
        ("alarms_received", "AIS/RDI alarm cells consumed"),
        ("rdi_cells_sent", "RDI cells injected upstream"),
        ("ais_cells_sent", "AIS cells injected downstream"),
    ):
        registry.counter(
            prefix + name,
            (lambda n: lambda: getattr(supervisor, n))(name),
            unit="events",
            description=description,
        )


def _instrument_signalling(
    registry: MetricsRegistry, agent, prefix: str = "sig."
) -> None:
    """Expose a :class:`repro.atm.signalling.SignallingAgent`'s counters."""
    for name, description in (
        ("messages_sent", "signalling messages transmitted"),
        ("messages_received", "signalling messages consumed"),
        ("calls_refused", "SETUPs rejected by admission policy"),
        ("setup_retransmits", "SETUP retransmissions (T303 expiry)"),
        ("release_retransmits", "RELEASE retransmissions (T308 expiry)"),
        ("calls_timed_out", "calls abandoned after retry exhaustion"),
        ("calls_restored", "calls re-placed by the recovery plane"),
    ):
        registry.counter(
            prefix + name,
            (lambda n: lambda: getattr(agent, n).count)(name),
            unit="events",
            description=description,
        )


def _instrument_port(
    registry: MetricsRegistry,
    port,
    prefix: Optional[str] = None,
    topk: int = TOPK_DEFAULT,
) -> None:
    """Expose an :class:`repro.atm.mux.OutputPort`'s queue accounting.

    Covers the itemised drop classes (CLP-first vs tail), the EFCI
    marking counter, the instantaneous backlog, and the per-VC
    occupancy/loss breakdowns the fairness analyses read.  The per-VC
    books are bounded top-K aggregates (:func:`topk_book`): at 2k+
    churning VCs an unbounded per-VC dict would dominate every metrics
    export.
    """
    p = f"{prefix or port.name}."
    for name, counter, description in (
        ("enqueued", port.enqueued, "cells admitted to the buffer"),
        ("dropped", port.dropped, "cells refused (all causes)"),
        ("dropped_clp", port.dropped_clp, "CLP=1 cells refused at threshold"),
        ("dropped_full", port.dropped_full, "cells tail-dropped when full"),
        ("efci_marked", port.efci_marked, "user cells EFCI-marked"),
    ):
        registry.counter(
            p + name,
            (lambda c: lambda: c.count)(counter),
            unit="cells",
            description=description,
        )
    registry.gauge(
        p + "backlog",
        lambda: port.backlog,
        unit="cells",
        description="cells sitting in the buffer right now",
    )
    registry.gauge(
        p + "loss_ratio",
        lambda: port.loss_ratio,
        unit="fraction",
        description="dropped / offered since start",
    )
    registry.histogram(
        p + "occupancy_by_vc",
        lambda: topk_book(port.occupancy_by_vc(), topk),
        unit="cells",
        description="buffer occupancy: top-K VCs + _other/_keys aggregate",
    )
    registry.histogram(
        p + "loss_ratio_by_vc",
        lambda: topk_book(port.loss_ratio_by_vc(), topk),
        unit="fraction",
        description="per-VC drop fraction: top-K VCs + _other/_keys aggregate",
    )


def _instrument_abr(
    registry: MetricsRegistry, agent, prefix: Optional[str] = None
) -> None:
    """Expose an :class:`repro.tm.abr.AbrAgent`'s control-loop counters."""
    p = f"{prefix or agent.name}."
    for name, description in (
        ("rm_sent", "forward RM cells generated"),
        ("rm_received", "RM cells consumed off the management lane"),
        ("rm_turnaround", "forward RM cells turned around"),
        ("rm_bad", "RM cells rejected by the codec"),
        ("rate_increases", "ACR additive increases applied"),
        ("rate_decreases", "ACR decreases applied"),
    ):
        registry.counter(
            p + name,
            (lambda n: lambda: getattr(agent, n).count)(name),
            unit="events",
            description=description,
        )


def _instrument_erica(
    registry: MetricsRegistry, allocator, prefix: Optional[str] = None
) -> None:
    """Expose an :class:`repro.tm.erica.EricaAllocator`'s counters."""
    p = f"{prefix or allocator.name}."
    registry.counter(
        p + "rm_seen",
        lambda: allocator.rm_seen.count,
        unit="cells",
        description="RM cells inspected in transit",
    )
    registry.counter(
        p + "rm_stamped",
        lambda: allocator.rm_stamped.count,
        unit="cells",
        description="forward RM cells whose ER was reduced",
    )


def _instrument_cac(
    registry: MetricsRegistry, cac, prefix: Optional[str] = None
) -> None:
    """Expose a :class:`repro.tm.cac.CallAdmissionController`'s books."""
    p = f"{prefix or cac.name}."
    registry.counter(
        p + "admitted",
        lambda: cac.calls_admitted.count,
        unit="calls",
        description="SETUPs admitted against the budgets",
    )
    registry.counter(
        p + "rejected",
        lambda: cac.calls_rejected.count,
        unit="calls",
        description="SETUPs refused (see the rejections histogram)",
    )
    registry.gauge(
        p + "booked_peak",
        lambda: cac.booked_peak,
        unit="cells/s",
        description="peak rate booked on the tightest link",
    )
    registry.gauge(
        p + "headroom",
        lambda: cac.headroom(),
        unit="cells/s",
        description="peak rate still admittable on every link",
    )
    registry.histogram(
        p + "rejections",
        lambda: dict(cac.rejections),
        unit="calls",
        description="rejections itemised by reason code",
    )


def _instrument_executor(
    registry: MetricsRegistry, executor, prefix: str = "runner."
) -> None:
    """Expose a sweep :class:`~repro.runner.Executor`'s counters.

    The executor refreshes its ``stats`` dict on every run, so the
    readers close over the executor (not one run's dict) and always
    report the most recent sweep: points seen, points executed fresh,
    cache hits, retries, and failures.
    """

    def read(name: str):
        return lambda: executor.stats.get(name, 0)

    for name, description in (
        ("points", "points in the most recent sweep"),
        ("executed", "points executed fresh (cache misses)"),
        ("cached", "points served from the result store"),
        ("retried", "point attempts that were retried"),
        ("failed", "points that exhausted their retries"),
    ):
        registry.counter(
            prefix + name, read(name), unit="points", description=description
        )


def _instrument_auditor(
    registry: MetricsRegistry, auditor, prefix: str = "audit."
) -> None:
    """Expose the conservation ledger's buckets as counters.

    Bucket names come from the auditor's snapshot, so the metric set
    tracks whatever drop causes the campaign actually produces.
    """
    registry.gauge(
        prefix + "offered",
        lambda: auditor.snapshot().offered,
        unit="cells",
        description="cells offered to the wire",
    )
    registry.gauge(
        prefix + "delivered",
        lambda: auditor.snapshot().delivered,
        unit="cells",
        description="cells delivered to the application",
    )
    registry.gauge(
        prefix + "unaccounted",
        lambda: auditor.snapshot().unaccounted,
        unit="cells",
        description="conservation gap (0 when the ledger balances)",
    )
    registry.histogram(
        prefix + "breakdown",
        lambda: dict(auditor.snapshot().breakdown()),
        unit="cells",
        description="per-cause drop attribution",
    )


def _instrument_sessions(
    registry: MetricsRegistry,
    engine,
    prefix: Optional[str] = None,
    topk: int = TOPK_DEFAULT,
) -> None:
    """Expose a :class:`repro.scale.SessionEngine`'s churn books.

    All per-session quantities are aggregates or bounded top-K books:
    the engine drives thousands of VCs, so the registry must stay O(K).
    """
    p = f"{prefix or engine.name}."
    for name, description in (
        ("placed", "calls placed (SETUP sent)"),
        ("connected", "calls that reached ACTIVE"),
        ("refused", "calls refused by admission control"),
        ("released", "calls released (holding time expired)"),
        ("failed", "calls that timed out terminally"),
    ):
        registry.counter(
            p + name,
            (lambda n: lambda: getattr(engine, f"sessions_{n}").count)(name),
            unit="calls",
            description=description,
        )
    registry.gauge(
        p + "active",
        lambda: engine.active_sessions,
        unit="calls",
        description="sessions holding an open VC right now",
    )
    registry.gauge(
        p + "peak_active",
        lambda: engine.peak_active,
        unit="calls",
        description="high-water mark of concurrent sessions",
    )
    registry.gauge(
        p + "setup_latency_mean_s",
        lambda: engine.setup_latency.mean,
        unit="s",
        description="mean SETUP->CONNECT latency over completed setups",
    )
    registry.gauge(
        p + "setup_latency_max_s",
        lambda: engine.setup_latency.maximum,
        unit="s",
        description="worst SETUP->CONNECT latency",
    )
    registry.histogram(
        p + "goodput_by_vc",
        lambda: topk_book(engine.delivered_by_vc, topk),
        unit="bytes",
        description="delivered bytes: top-K sessions + _other/_keys",
    )


# ---------------------------------------------------------------------------
# type-dispatched instrumentation
# ---------------------------------------------------------------------------

#: The canonical dispatch table: pipeline class name -> instrumenter.
#: Keyed by class *name* (walked over the MRO) so this module keeps the
#: obs packages' one structural rule -- nothing here imports the
#: pipeline packages.  simlint SL503 checks every ``_instrument_*``
#: defined above is reachable through this table.
INSTRUMENT_DISPATCH: Dict[str, Callable[..., None]] = {
    "HostNetworkInterface": _instrument_interface,
    "PhysicalLink": _instrument_link,
    "LinkSupervisor": _instrument_supervisor,
    "SignallingAgent": _instrument_signalling,
    "OutputPort": _instrument_port,
    "AbrAgent": _instrument_abr,
    "EricaAllocator": _instrument_erica,
    "CallAdmissionController": _instrument_cac,
    "Executor": _instrument_executor,
    "CellConservationAuditor": _instrument_auditor,
    "SessionEngine": _instrument_sessions,
}


def instrument(registry: MetricsRegistry, obj: Any, prefix: str = "") -> None:
    """Register the standard metric set for *obj*, whatever it is.

    Dispatches on the object's class (walking the MRO, so subclasses
    of instrumentable types work) through :data:`INSTRUMENT_DISPATCH`.
    An empty *prefix* uses each instrumenter's documented default --
    usually the object's own ``name`` -- exactly as the historical
    per-type entry points did; raise :class:`TypeError` for objects no
    instrumenter covers rather than silently registering nothing.
    """
    for klass in type(obj).__mro__:
        target = INSTRUMENT_DISPATCH.get(klass.__name__)
        if target is not None:
            if prefix:
                target(registry, obj, prefix=prefix)
            else:
                target(registry, obj)
            return
    raise TypeError(
        f"no instrumenter registered for {type(obj).__name__!r}; "
        f"known: {', '.join(sorted(INSTRUMENT_DISPATCH))}"
    )


# ---------------------------------------------------------------------------
# deprecated per-type aliases
# ---------------------------------------------------------------------------


def _deprecated_alias(name: str, target: Callable[..., None]) -> Callable[..., None]:
    @functools.wraps(target)
    def alias(*args: Any, **kwargs: Any) -> None:
        warnings.warn(
            f"repro.obs.{name} is deprecated; use "
            "repro.obs.instrument(registry, obj, prefix=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        target(*args, **kwargs)

    alias.__name__ = name
    alias.__qualname__ = name
    return alias


#: Deprecated aliases for the historical per-type entry points.  They
#: forward to the same implementations :func:`instrument` dispatches
#: to; new code should call :func:`instrument`.
instrument_interface = _deprecated_alias("instrument_interface", _instrument_interface)
instrument_link = _deprecated_alias("instrument_link", _instrument_link)
instrument_supervisor = _deprecated_alias("instrument_supervisor", _instrument_supervisor)
instrument_signalling = _deprecated_alias("instrument_signalling", _instrument_signalling)
instrument_port = _deprecated_alias("instrument_port", _instrument_port)
instrument_abr = _deprecated_alias("instrument_abr", _instrument_abr)
instrument_erica = _deprecated_alias("instrument_erica", _instrument_erica)
instrument_cac = _deprecated_alias("instrument_cac", _instrument_cac)
instrument_executor = _deprecated_alias("instrument_executor", _instrument_executor)
instrument_auditor = _deprecated_alias("instrument_auditor", _instrument_auditor)
