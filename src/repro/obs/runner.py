"""Traced scenario runner behind ``python -m repro trace <experiment>``.

Each traceable experiment rebuilds a small, fully instrumented version
of the corresponding evaluation scenario: a :class:`TraceRecorder` on
every pipeline component, a :class:`MetricsRegistry` sampling the live
counters, and a :class:`CycleProfiler` on the engines.  The run is
deliberately shorter than the evaluation runs -- a trace is for looking
at individual cells, not for converged averages -- but uses the same
configurations, sources, and wiring, so what Perfetto shows is the
same pipeline the tables measure.

Usage::

    python -m repro trace f2 --out trace.json
    python -m repro trace r1 --out trace.jsonl --metrics metrics.csv

``--out`` picks the exporter by extension: ``.json`` writes a Chrome
``trace_event`` file (load it at https://ui.perfetto.dev), ``.jsonl``
writes one event per line for scripting.  ``--metrics`` does the same
with ``.csv`` / ``.json``.  The report printed to stdout includes the
profiler's measured T1'/T2' cycle-budget tables.
"""

from __future__ import annotations

import argparse
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, instrument
from repro.obs.profiler import CycleProfiler, profile_interface
from repro.obs.trace import TraceRecorder
from repro.sim.core import Simulator


@dataclass
class TracedRun:
    """Everything one instrumented run produced."""

    experiment: str
    title: str
    sim: Simulator
    recorder: TraceRecorder
    registry: MetricsRegistry
    profiler: CycleProfiler
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """The human-readable report: events, drops, measured budgets."""
        lines = [
            f"trace {self.experiment}: {self.title}",
            f"  simulated {self.sim.now * 1e3:.3f} ms, "
            f"{len(self.recorder)} events, "
            f"{self.registry.samples_taken} metric samples",
        ]
        tally = TallyCounter(e.name for e in self.recorder.events)
        top = ", ".join(
            f"{name} x{count}" for name, count in tally.most_common(6)
        )
        if top:
            lines.append(f"  busiest events: {top}")
        drops = self.recorder.drop_reasons()
        if drops:
            dropped = ", ".join(
                f"{reason}={count}" for reason, count in sorted(drops.items())
            )
            lines.append(f"  drops: {dropped}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        rendered = self.profiler.render()
        if rendered:
            lines.append("")
            lines.append(rendered)
        return "\n".join(lines)

    def export_trace(self, path: str) -> None:
        """Write the trace; ``.jsonl`` -> JSONL, anything else -> Chrome."""
        if path.endswith(".jsonl"):
            self.recorder.export_jsonl(path)
        else:
            self.recorder.export_chrome(path)

    def export_metrics(self, path: str) -> None:
        """Write the metrics; ``.csv`` -> series CSV, else JSON."""
        if path.endswith(".csv"):
            self.registry.to_csv(path)
        else:
            self.registry.to_json(path)


def _instrument_pair(run: TracedRun, *nics) -> None:
    for nic in nics:
        nic.attach_trace(run.recorder)
        profile_interface(nic, run.profiler)
        instrument(run.registry, nic)


def _build_f2(run: TracedRun, sdu_size: int = 9180) -> float:
    """F2's transmit scenario: greedy sender over a clean point-to-point."""
    from repro.results.experiments import lab_host
    from repro.nic.config import aurora_oc3
    from repro.workloads.generators import GreedySource
    from repro.workloads.scenarios import build_point_to_point

    config = lab_host(aurora_oc3())
    scenario = build_point_to_point(run.sim, config)
    GreedySource(run.sim, scenario.sender, scenario.vc, sdu_size).start()
    _instrument_pair(run, scenario.sender, scenario.receiver)
    instrument(run.registry, scenario.link_ab, prefix="link_ab.")
    run.title = f"greedy {sdu_size}-byte transmit over {config.link.name}"
    run.notes.append(
        "host software zeroed (lab_host): the trace shows the adaptor "
        "pipeline the paper budgets"
    )
    return 30 * (sdu_size / 48 + 2) * config.link.cell_time


def _build_f3(run: TracedRun, sdu_size: int = 9180) -> float:
    """F3's receive scenario: backlogged wire feeding the RX FIFO."""
    from repro.aal.aal5 import Aal5Segmenter
    from repro.atm.addressing import VcAddress
    from repro.nic.config import aurora_oc3
    from repro.nic.nic import HostNetworkInterface
    from repro.results.experiments import lab_host
    from repro.workloads.generators import make_payload

    config = lab_host(aurora_oc3())
    nic = HostNetworkInterface(run.sim, config, name="rxhost")
    received: List = []
    nic.on_pdu = received.append
    vc = nic.open_vc(address=VcAddress(0, 100))
    nic.start()
    _instrument_pair(run, nic)
    segmenter = Aal5Segmenter(vc.address)
    payload = make_payload(sdu_size)

    def feeder():
        while True:
            for cell in segmenter.segment(payload):
                yield run.sim.timeout(config.link.cell_time)
                run.recorder.tag_cell(cell)
                yield nic.rx_fifo.put(cell)

    run.sim.process(feeder())
    run.title = f"backpressured {sdu_size}-byte receive on {config.link.name}"
    run.notes.append("cells are fed at link rate with upstream buffering")
    return 30 * (sdu_size / 48 + 2) * config.link.cell_time


def _build_r1(
    run: TracedRun,
    sdu_size: int = 8192,
    n_vcs: int = 4,
    loss_rate: float = 0.02,
    seed: int = 7,
) -> float:
    """R1's lossy overload: EPD/PPD on, conservation auditor attached."""
    from dataclasses import replace

    from repro.atm.addressing import VcAddress
    from repro.atm.errors import UniformLoss
    from repro.atm.link import PhysicalLink
    from repro.faults.audit import CellConservationAuditor
    from repro.nic.config import aurora_oc12
    from repro.nic.nic import HostNetworkInterface
    from repro.nic.rx import FrameDiscardPolicy
    from repro.results.experiments import lab_host
    from repro.sim.random import RandomStreams
    from repro.workloads.scenarios import InterleavedCellSource

    config = replace(
        lab_host(aurora_oc12()), frame_discard=FrameDiscardPolicy()
    )
    nic = HostNetworkInterface(run.sim, config, name="rxhost")
    received: List = []
    nic.on_pdu = received.append
    for i in range(n_vcs):
        nic.open_vc(address=VcAddress(0, 100 + i))
    nic.start()
    _instrument_pair(run, nic)
    link = PhysicalLink(
        run.sim,
        config.link,
        sink=nic.rx_input,
        loss_model=UniformLoss(
            loss_rate, rng=RandomStreams(seed).stream("r1.loss")
        ),
        name="lossy-wire",
    )
    link.trace = run.recorder
    instrument(run.registry, link)
    auditor = CellConservationAuditor(link, nic)
    instrument(run.registry, auditor)
    InterleavedCellSource(
        run.sim,
        sink=link.send,
        link=config.link,
        n_vcs=n_vcs,
        sdu_size=sdu_size,
    ).start()
    run.title = (
        f"{n_vcs}-VC overload at {config.link.name}, "
        f"{loss_rate:.1%} cell loss, EPD/PPD on"
    )
    run.notes.append(
        "watch cell.drop events: every lost/refused cell carries its "
        "reason, and the audit.* gauges keep the conservation ledger"
    )
    return 20 * n_vcs * (sdu_size / 48 + 2) * config.link.cell_time


def _build_r2(
    run: TracedRun,
    sdu_size: int = 4096,
    n_calls: int = 4,
    flap_start: float = 0.006,
    flap_down: float = 0.005,
    seed: int = 1,
) -> float:
    """R2's recovery-on arm: link flap, supervisors, timers, restorer."""
    from repro.atm.errors import ScheduledLoss, UniformLoss
    from repro.atm.signalling import (
        CallRefused,
        CallState,
        SignallingAgent,
    )
    from repro.faults.audit import CellConservationAuditor
    from repro.net import Testbed
    from repro.nic.config import aurora_oc3
    from repro.resilience.experiment import (
        R2_SUPERVISION,
        R2_TIMERS,
        _call_start_times,
    )
    from repro.resilience.restore import CallRestorer
    from repro.resilience.supervisor import LinkSupervisor
    from repro.sim.random import RandomStreams

    duration = 0.02
    sim = run.sim
    streams = RandomStreams(seed)
    config = aurora_oc3()
    flap = ScheduledLoss(
        UniformLoss(1.0, rng=streams.stream("r2.flap")),
        start=flap_start,
        stop=flap_start + flap_down,
    )
    tb = Testbed(default_config=config)
    tb.add_host("a").add_host("b")
    tb.connect("a", "b", loss_ab=flap)
    net = tb.build(sim)
    a, b = net.hosts["a"], net.hosts["b"]
    link_ab, link_ba = net.links["a->b"], net.links["b->a"]
    _instrument_pair(run, a, b)
    link_ab.trace = run.recorder
    link_ba.trace = run.recorder
    instrument(run.registry, link_ab, prefix="link_ab.")
    auditor = CellConservationAuditor(link_ab, b)
    instrument(run.registry, auditor)

    sig_a = SignallingAgent(sim, a, streams=streams, timers=R2_TIMERS)
    sig_b = SignallingAgent(sim, b, streams=streams, timers=R2_TIMERS)
    sig_a.trace = run.recorder
    sig_b.trace = run.recorder
    instrument(run.registry, sig_a, prefix="sig_a.")
    instrument(run.registry, sig_b, prefix="sig_b.")
    sup_a = LinkSupervisor(sim, a, config=R2_SUPERVISION, name="sup-a")
    sup_b = LinkSupervisor(sim, b, config=R2_SUPERVISION, name="sup-b")
    sup_a.trace = run.recorder
    sup_b.trace = run.recorder
    instrument(run.registry, sup_a, prefix="sup_a.")
    instrument(run.registry, sup_b, prefix="sup_b.")
    sig_a.on_call_active = lambda call: sup_a.protect(call.address)
    sig_b.on_call_active = lambda call: sup_b.protect(call.address)
    sup_a.start()
    sup_b.start()
    restorer = CallRestorer(sim, sig_a, sup_a)

    payload = bytes(sdu_size)

    def pump(call):
        try:
            address = yield call.connected
        except CallRefused:
            return
        while sim.now < duration and call.state is CallState.ACTIVE:
            yield a.send(address, payload)
            yield sim.timeout(1.5e-3)

    restorer.on_restored = lambda old, new: sim.process(pump(new))

    def place(start_at: float):
        yield sim.timeout(start_at)
        call = sig_a.place_call()
        restorer.track(call)
        sim.process(pump(call))

    for start_at in _call_start_times(n_calls, flap_start, flap_down):
        sim.process(place(start_at))

    run.title = (
        f"{n_calls}-call link flap on {config.link.name} with the "
        "fault-management plane on (R2's recovery arm)"
    )
    run.notes.append(
        "watch oam.cc.loc / oam.alarm.* / link.supervisor.state / "
        "sig.retransmit / sig.call.restored: the alarm protocol and the "
        "restorer acting across the outage window"
    )
    return duration


def _build_c1(
    run: TracedRun,
    n_sources: int = 3,
    buffer_cells: int = 256,
    efci_threshold: int = 64,
    sdu_size: int = 1528,
    seed: int = 1,
) -> float:
    """C1's closed-loop arm: ABR sources converging at a bottleneck."""
    from repro.atm.addressing import VcAddress
    from repro.net import Testbed
    from repro.nic.config import aurora_oc3
    from repro.sim.random import RandomStreams
    from repro.tm.abr import AbrAgent, AbrParams
    from repro.tm.erica import EricaAllocator
    from repro.tm.experiment import C1_TARGET_UTILIZATION
    from repro.workloads.generators import GreedySource

    sim = run.sim
    streams = RandomStreams(seed)
    cfg = aurora_oc3()
    spec = cfg.link
    weights = {VcAddress(0, 32 + i): i + 1 for i in range(n_sources)}
    vcs = sorted(weights, key=lambda vc: vc.vci)

    tb = Testbed(default_config=cfg)
    for i in range(n_sources):
        tb.add_host(f"s{i}")
    tb.add_host("d")
    tb.add_switch("sw1").add_switch("sw2")
    tb.link(
        "sw1",
        "sw2",
        buffer_cells=buffer_cells,
        efci_threshold=efci_threshold,
        port_name="bottleneck",
    )
    tb.link("sw2", "d", port_name="p-egress")
    for i in range(n_sources):
        tb.link("sw2", f"s{i}", port_name=f"p-ret{i}")
    for i in range(n_sources):
        tb.link(f"s{i}", "sw1")
    tb.link("d", "sw2")
    for i, vc in enumerate(vcs):
        tb.vc(vc, [f"s{i}", "sw1", "sw2", "d"])
        tb.route(vc, ["d", "sw2", f"s{i}"])
    net = tb.build(sim)
    sources = [net.hosts[f"s{i}"] for i in range(n_sources)]
    dest = net.hosts["d"]
    mid = net.links["sw1->sw2"]
    to_dest = net.links["sw2->d"]
    bottleneck = net.ports["bottleneck"]
    for i in range(n_sources):
        net.links[f"s{i}->sw1"].trace = run.recorder

    erica = EricaAllocator(
        sim,
        net.switches["sw1"],
        target_utilization=C1_TARGET_UTILIZATION,
        weight_of=weights.get,
    )
    dest_agent = AbrAgent(sim, dest)
    params = AbrParams(
        pcr=spec.cell_rate,
        icr=spec.cell_rate / 16.0,
        rif=1.0 / 32.0,
        rdf=1.0 / 16.0,
    )
    agents = []
    for i, vc in enumerate(vcs):
        agent = AbrAgent(sim, sources[i])
        agent.add_vc(vc, params)
        agents.append(agent)

    _instrument_pair(run, *sources, dest)
    mid.trace = run.recorder
    to_dest.trace = run.recorder
    instrument(run.registry, mid, prefix="mid.")
    bottleneck.trace = run.recorder
    instrument(run.registry, bottleneck, prefix="bottleneck.")
    erica.trace = run.recorder
    instrument(run.registry, erica)
    for agent in agents + [dest_agent]:
        agent.trace = run.recorder
        instrument(run.registry, agent)

    start_rng = streams.stream("c1.start")
    for i, vc in enumerate(vcs):
        source = GreedySource(sim, sources[i], vc, sdu_size, name=f"greedy{i}")
        sim.schedule_call(start_rng.uniform(0.0, 2e-3), source.start)
    dest.start()

    run.title = (
        f"{n_sources} weighted ABR sources at an OC-3 bottleneck "
        "(C1's closed-loop arm)"
    )
    run.notes.append(
        "watch rm.cell.sent / rm.cell.marked / rm.cell.turnaround / "
        "abr.rate.update / port.efci: the explicit-rate loop closing "
        "around the bottleneck queue"
    )
    return 0.01


def _build_s1(
    run: TracedRun,
    arrival_rate: float = 600.0,
    holding_time: float = 0.05,
    pdus_per_session: int = 2,
    sdu_size: int = 256,
    cam_entries: int = 32,
    reassembly_quota: int = 64,
    seed: int = 1,
) -> float:
    """S1's churn scenario at trace scale: signalled sessions through CAC."""
    from dataclasses import replace

    from repro.atm.signalling import SIGNALLING_VC, SignallingAgent
    from repro.faults.audit import CellConservationAuditor
    from repro.net import Testbed
    from repro.nic.config import aurora_oc3
    from repro.scale.experiment import _FWD, _REV
    from repro.scale.session import SessionEngine, SessionProfile
    from repro.sim.random import RandomStreams
    from repro.tm.cac import CallAdmissionController

    duration = 0.2
    sim = run.sim
    streams = RandomStreams(seed)
    cfg = replace(
        aurora_oc3(),
        cam_entries=cam_entries,
        cam_eviction="lru",
        reassembly_quota=reassembly_quota,
    )

    # The same two-switch fabric run_s1 churns at 2k+ VCs, shrunk to a
    # few dozen concurrent sessions so individual SETUP/CONNECT/RELEASE
    # exchanges stay legible in the trace.
    tb = Testbed(default_config=cfg)
    tb.add_host("caller").add_host("callee")
    tb.add_switch("sw1").add_switch("sw2")
    tb.link("caller", "sw1")
    tb.link("sw1", "sw2", port_name="p-fwd")
    tb.link("sw2", "callee", port_name="p-egress")
    tb.link("callee", "sw2")
    tb.link("sw2", "sw1", port_name="p-rev")
    tb.link("sw1", "caller", port_name="p-ret")
    tb.route(SIGNALLING_VC, _FWD)
    tb.route(SIGNALLING_VC, _REV)
    net = tb.build(sim)
    caller, callee = net.hosts["caller"], net.hosts["callee"]
    _instrument_pair(run, caller, callee)
    for link in net.links.values():
        link.trace = run.recorder
    instrument(run.registry, net.links["sw1->sw2"], prefix="mid.")
    instrument(run.registry, net.ports["p-egress"], prefix="egress.")

    auditor = CellConservationAuditor(
        net.links["caller->sw1"],
        callee,
        switches=list(net.switches.values()),
        ports=[net.ports[p] for p in ("p-fwd", "p-egress", "p-rev", "p-ret")],
        extra_links=[
            net.links[n]
            for n in ("sw1->sw2", "sw2->callee", "sw2->sw1", "sw1->caller")
        ],
        extra_injections=[net.links["callee->sw2"]],
        extra_receivers=[caller],
    )
    instrument(run.registry, auditor)

    callee_sig = SignallingAgent(
        sim, callee, streams=streams, name="callee-sig", shape_data_vcs=False
    )
    caller_sig = SignallingAgent(
        sim, caller, streams=streams, name="caller-sig", shape_data_vcs=False
    )
    callee_sig.trace = run.recorder
    caller_sig.trace = run.recorder
    instrument(run.registry, caller_sig, prefix="sig.")
    cac = CallAdmissionController(sim)
    cac.add_link(net.links["sw1->sw2"])
    cac.guard(callee_sig)
    instrument(run.registry, cac, prefix="cac.")

    caller_sig.on_call_active = lambda call: net.add_route(call.address, _FWD)
    caller_sig.on_call_released = lambda call: net.remove_route(
        call.address, _FWD
    )

    engine = SessionEngine(
        sim,
        caller_sig,
        streams,
        SessionProfile(
            arrival_rate=arrival_rate,
            holding_time=holding_time,
            peak_rate_bps=64000.0,
            pdus_per_session=pdus_per_session,
            sdu_size=sdu_size,
        ),
    )
    callee_sig.on_user_pdu = lambda completion: engine.record_delivery(
        completion.vc, completion.size
    )
    instrument(run.registry, engine, prefix="sessions.")

    engine.start()
    callee.start()
    # One call placed at t=0, so even a sub-millisecond smoke trace
    # captures a full SETUP/CONNECT exchange before the first Poisson
    # arrival lands.
    caller_sig.place_call(peak_rate_bps=64000.0)

    run.title = (
        f"Poisson session churn (~{arrival_rate * holding_time:.0f} "
        f"concurrent) through a two-switch fabric, CAM={cam_entries} "
        "(S1's scenario at trace scale)"
    )
    run.notes.append(
        "watch rx.cam.evict / rx.cam.miss and cell.drop(unknown_vc): "
        "calls churn VCs through a CAM smaller than the connection "
        "population, released VCs' stragglers land as unroutable, and "
        "the audit.* ledger closes over both directions of the fabric"
    )
    return duration


def _build_quickstart(run: TracedRun, sdu_size: int = 4096) -> float:
    """The examples/quickstart.py exchange, instrumented end to end."""
    from repro.nic.config import aurora_oc3
    from repro.workloads.generators import GreedySource
    from repro.workloads.scenarios import build_point_to_point

    config = aurora_oc3()
    scenario = build_point_to_point(run.sim, config)
    GreedySource(
        run.sim, scenario.sender, scenario.vc, sdu_size, total_pdus=5
    ).start()
    _instrument_pair(run, scenario.sender, scenario.receiver)
    instrument(run.registry, scenario.link_ab, prefix="link_ab.")
    run.title = f"five {sdu_size}-byte PDUs with full host costs"
    run.notes.append(
        "host costs are NOT zeroed here: interrupt and driver events "
        "appear between DMA completion and delivery"
    )
    return 10 * (sdu_size / 48 + 2) * config.link.cell_time


#: experiment id -> (builder, one-line description).
TRACEABLE: Dict[str, Tuple[Callable[[TracedRun], float], str]] = {
    "f2": (_build_f2, "greedy transmit path (F2's scenario)"),
    "f3": (_build_f3, "backpressured receive path (F3's scenario)"),
    "r1": (_build_r1, "lossy overload with frame discard (R1's scenario)"),
    "r2": (_build_r2, "link-flap recovery plane (R2's recovery-on arm)"),
    "c1": (_build_c1, "ABR bottleneck control loop (C1's closed-loop arm)"),
    "s1": (_build_s1, "session churn at scale (S1's scenario, shrunk)"),
    "quickstart": (_build_quickstart, "the README quickstart exchange"),
}


def run_traced(
    experiment: str,
    duration: Optional[float] = None,
    sample_period: Optional[float] = None,
) -> TracedRun:
    """Build, instrument, and run one traceable experiment."""
    key = experiment.lower()
    entry = TRACEABLE.get(key)
    if entry is None:
        raise KeyError(
            f"unknown traceable experiment {experiment!r}; "
            f"known: {', '.join(sorted(TRACEABLE))}"
        )
    builder, _ = entry
    sim = Simulator()
    run = TracedRun(
        experiment=key,
        title="",
        sim=sim,
        recorder=TraceRecorder(sim),
        registry=MetricsRegistry(sim),
        profiler=CycleProfiler(),
    )
    default_duration = builder(run)
    window = duration if duration is not None else default_duration
    run.registry.start_sampling(
        sample_period if sample_period is not None else window / 50
    )
    sim.run(until=window)
    run.registry.sample()
    return run


def build_parser() -> argparse.ArgumentParser:
    """The ``repro trace`` argument parser (shared with DOC103 checks)."""
    parser = argparse.ArgumentParser(
        prog="repro-atm trace",
        description="Run one experiment fully instrumented and export the trace.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(TRACEABLE),
        help="scenario to trace",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="trace output: .json = Chrome/Perfetto, .jsonl = line JSON",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="metrics output: .csv = sampled series, .json = full snapshot",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds (default: scenario-appropriate)",
    )
    parser.add_argument(
        "--sample-period",
        type=float,
        default=None,
        help="metric sampling period in simulated seconds",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    run = run_traced(
        args.experiment,
        duration=args.duration,
        sample_period=args.sample_period,
    )
    print(run.summary())
    if args.out:
        run.export_trace(args.out)
        print(f"  trace written to {args.out}")
    if args.metrics:
        run.export_metrics(args.metrics)
        print(f"  metrics written to {args.metrics}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
