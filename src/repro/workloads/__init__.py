"""Synthetic workloads standing in for the testbed's traffic.

PDU-size distributions (:mod:`repro.workloads.pdu_sizes`) model the
era's traffic mixes; sources (:mod:`repro.workloads.generators`) drive
an interface's send API greedily, at a Poisson rate, or in on/off
bursts; scenarios (:mod:`repro.workloads.scenarios`) wire complete
testbeds used by several experiments.
"""

from repro.workloads.generators import (
    GreedySource,
    OnOffSource,
    PoissonSource,
)
from repro.workloads.pdu_sizes import (
    BimodalSize,
    ConstantSize,
    EmpiricalInternetMix,
    SizeDistribution,
    UniformSize,
)
from repro.workloads.scenarios import (
    InterleavedCellSource,
    PointToPoint,
    build_point_to_point,
)

__all__ = [
    "BimodalSize",
    "ConstantSize",
    "EmpiricalInternetMix",
    "GreedySource",
    "InterleavedCellSource",
    "OnOffSource",
    "PointToPoint",
    "PoissonSource",
    "SizeDistribution",
    "UniformSize",
    "build_point_to_point",
]
