"""PDU-size distributions.

The interesting sizes in 1991:

- 64-byte-class: transport acknowledgements and control traffic,
- 576 bytes: the conservative Internet path MTU,
- 1500 bytes: Ethernet-framed traffic crossing into the ATM world,
- 9180 bytes: the IP-over-ATM default MTU (RFC 1626's number),
- 65527/65535: the AAL5 ceiling, exercised by bulk transfer.

The empirical mix weights these the way contemporary traffic studies
did: most packets small, most *bytes* in the large packets.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from repro.aal.aal5 import AAL5_MAX_SDU

IP_OVER_ATM_MTU = 9180


class SizeDistribution(Protocol):
    """Anything that can draw PDU sizes."""

    def sample(self, rng: random.Random) -> int:
        """One PDU size in bytes."""
        ...  # pragma: no cover

    @property
    def mean(self) -> float:
        """Expected size in bytes."""
        ...  # pragma: no cover


class ConstantSize:
    """Every PDU the same size -- the unit of most sweeps."""

    def __init__(self, size: int) -> None:
        if not 1 <= size <= AAL5_MAX_SDU:
            raise ValueError(f"size {size} outside 1..{AAL5_MAX_SDU}")
        self.size = size

    def sample(self, rng: random.Random) -> int:
        return self.size

    @property
    def mean(self) -> float:
        return float(self.size)


class UniformSize:
    """Uniformly distributed sizes in [lo, hi]."""

    def __init__(self, lo: int, hi: int) -> None:
        if not 1 <= lo <= hi <= AAL5_MAX_SDU:
            raise ValueError(f"bad range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2


class BimodalSize:
    """Small-or-large: acknowledgement/bulk interleaving."""

    def __init__(
        self,
        small: int = 64,
        large: int = IP_OVER_ATM_MTU,
        p_small: float = 0.5,
    ) -> None:
        if not 0.0 <= p_small <= 1.0:
            raise ValueError("p_small outside [0, 1]")
        if not 1 <= small <= AAL5_MAX_SDU or not 1 <= large <= AAL5_MAX_SDU:
            raise ValueError("sizes outside AAL5 range")
        self.small = small
        self.large = large
        self.p_small = p_small

    def sample(self, rng: random.Random) -> int:
        return self.small if rng.random() < self.p_small else self.large

    @property
    def mean(self) -> float:
        return self.p_small * self.small + (1 - self.p_small) * self.large


class EmpiricalInternetMix:
    """A 1991-flavoured packet mix: many small, bytes in the large."""

    DEFAULT_SIZES: Sequence[int] = (64, 128, 576, 1500, IP_OVER_ATM_MTU)
    DEFAULT_WEIGHTS: Sequence[float] = (0.45, 0.15, 0.20, 0.15, 0.05)

    def __init__(
        self,
        sizes: Sequence[int] | None = None,
        weights: Sequence[float] | None = None,
    ) -> None:
        self.sizes = list(sizes if sizes is not None else self.DEFAULT_SIZES)
        self.weights = list(
            weights if weights is not None else self.DEFAULT_WEIGHTS
        )
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ValueError("sizes and weights must align and be non-empty")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative, not all zero")
        if any(not 1 <= s <= AAL5_MAX_SDU for s in self.sizes):
            raise ValueError("sizes outside AAL5 range")

    def sample(self, rng: random.Random) -> int:
        return rng.choices(self.sizes, weights=self.weights, k=1)[0]

    @property
    def mean(self) -> float:
        total = sum(self.weights)
        return sum(s * w for s, w in zip(self.sizes, self.weights)) / total
