"""Traffic sources that drive an interface's send API.

All sources work against anything exposing ``send(vc, sdu)`` returning
a yieldable event (both :class:`~repro.nic.nic.HostNetworkInterface`
and the host-SAR baseline qualify), so every experiment can swap
architectures without touching its workload.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.atm.addressing import VcAddress
from repro.sim.core import Simulator
from repro.sim.monitor import Counter
from repro.sim.random import RandomStreams
from repro.workloads.pdu_sizes import ConstantSize, SizeDistribution

_PAYLOAD_BLOCK = bytes(range(256)) * 256


def make_payload(size: int) -> bytes:
    """Deterministic non-trivial payload of *size* bytes."""
    if size <= len(_PAYLOAD_BLOCK):
        return _PAYLOAD_BLOCK[:size]
    reps = -(-size // len(_PAYLOAD_BLOCK))
    return (_PAYLOAD_BLOCK * reps)[:size]


class _SourceBase:
    """Common bookkeeping for all sources."""

    def __init__(
        self,
        sim: Simulator,
        interface,
        vc: VcAddress,
        sizes: SizeDistribution,
        rng: Optional[random.Random] = None,
        name: str = "source",
    ) -> None:
        self.sim = sim
        self.interface = interface
        self.vc = vc
        self.sizes = sizes
        # The default stream is named after the source so concurrent
        # sources with distinct names draw independently (CRN discipline).
        self.rng = (
            rng
            if rng is not None
            else RandomStreams(0).stream(f"workloads.{name}")
        )
        self.name = name
        self.pdus_offered = Counter(f"{name}.pdus")
        self.bytes_offered = Counter(f"{name}.bytes")
        self._process = None

    def start(self):
        """Launch the source process (idempotent); returns the process."""
        if self._process is None:
            self._process = self.sim.process(self._run())
        return self._process

    def _offer(self, size: int):
        self.pdus_offered.increment()
        self.bytes_offered.increment(size)
        return self.interface.send(self.vc, make_payload(size))

    def _run(self):  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # noqa: unreachable - marks this as a generator function


class GreedySource(_SourceBase):
    """Saturating source: always a send in flight, optionally bounded.

    ``total_pdus=None`` runs until the simulation stops.  Because
    ``send`` blocks when the TX ring fills, a greedy source measures
    the *interface's* capacity, not its own.
    """

    def __init__(
        self,
        sim: Simulator,
        interface,
        vc: VcAddress,
        sizes: SizeDistribution | int,
        total_pdus: Optional[int] = None,
        rng: Optional[random.Random] = None,
        name: str = "greedy",
    ) -> None:
        if isinstance(sizes, int):
            sizes = ConstantSize(sizes)
        super().__init__(sim, interface, vc, sizes, rng, name)
        if total_pdus is not None and total_pdus < 1:
            raise ValueError("total_pdus must be >= 1 or None")
        self.total_pdus = total_pdus

    def _run(self):
        sent = 0
        while self.total_pdus is None or sent < self.total_pdus:
            size = self.sizes.sample(self.rng)
            yield self._offer(size)
            sent += 1


class PoissonSource(_SourceBase):
    """Open-loop Poisson arrivals at *pdus_per_second*.

    Arrivals that find the send path backed up queue behind it (the
    send event is not awaited), so offered load is honest even past
    saturation.
    """

    def __init__(
        self,
        sim: Simulator,
        interface,
        vc: VcAddress,
        sizes: SizeDistribution | int,
        pdus_per_second: float,
        rng: Optional[random.Random] = None,
        name: str = "poisson",
    ) -> None:
        if isinstance(sizes, int):
            sizes = ConstantSize(sizes)
        super().__init__(sim, interface, vc, sizes, rng, name)
        if pdus_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rate = pdus_per_second

    def _run(self):
        while True:
            yield self.sim.timeout(self.rng.expovariate(self.rate))
            self._offer(self.sizes.sample(self.rng))


class OnOffSource(_SourceBase):
    """Bursty traffic: exponentially distributed on/off periods.

    During an on-period PDUs are emitted back to back (awaited, so a
    burst is as fast as the interface accepts); off-periods are silent.
    The canonical generator for FIFO-sizing experiments (F5).
    """

    def __init__(
        self,
        sim: Simulator,
        interface,
        vc: VcAddress,
        sizes: SizeDistribution | int,
        mean_burst_pdus: float = 10.0,
        mean_off_time: float = 1e-3,
        rng: Optional[random.Random] = None,
        name: str = "onoff",
    ) -> None:
        if isinstance(sizes, int):
            sizes = ConstantSize(sizes)
        super().__init__(sim, interface, vc, sizes, rng, name)
        if mean_burst_pdus < 1:
            raise ValueError("mean burst length must be >= 1 PDU")
        if mean_off_time < 0:
            raise ValueError("mean off time must be >= 0")
        self.mean_burst_pdus = mean_burst_pdus
        self.mean_off_time = mean_off_time
        self.bursts = Counter(f"{name}.bursts")

    def _run(self):
        while True:
            burst = max(1, round(self.rng.expovariate(1.0 / self.mean_burst_pdus)))
            self.bursts.increment()
            for _ in range(burst):
                yield self._offer(self.sizes.sample(self.rng))
            if self.mean_off_time > 0:
                yield self.sim.timeout(
                    self.rng.expovariate(1.0 / self.mean_off_time)
                )
