"""Canned end-to-end testbeds used by several experiments.

- :func:`build_point_to_point` -- the workhorse: two interfaces, a link
  pair, one or more VCs, and a receive-side PDU log.
- :class:`InterleavedCellSource` -- a synthetic wire feeding a receive
  path with cells from many VCs round-robin at link rate, the worst
  case for reassembly-context locality (experiment F6).  A single real
  transmitter cannot produce this pattern (it finishes one PDU before
  the next), but a switch merging many senders does -- this source
  stands in for that switch fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.aal.aal5 import Aal5Segmenter
from repro.atm.addressing import VcAddress
from repro.atm.cell import AtmCell
from repro.atm.errors import LossModel
from repro.atm.link import LinkSpec, PhysicalLink
from repro.nic.config import NicConfig
from repro.nic.descriptors import RxCompletion
from repro.nic.nic import HostNetworkInterface, connect
from repro.sim.core import Simulator
from repro.sim.monitor import Counter
from repro.workloads.generators import make_payload


@dataclass
class PointToPoint:
    """A sender/receiver pair joined by a link, plus observation hooks."""

    sim: Simulator
    sender: HostNetworkInterface
    receiver: HostNetworkInterface
    vcs: List[VcAddress]
    link_ab: PhysicalLink
    link_ba: PhysicalLink
    received: List[RxCompletion] = field(default_factory=list)

    @property
    def vc(self) -> VcAddress:
        """The first (often only) VC."""
        return self.vcs[0]

    def received_bytes(self) -> int:
        return sum(c.size for c in self.received)

    def goodput_mbps(self, window: Optional[float] = None) -> float:
        """Delivered user bits over elapsed (or given) time."""
        span = self.sim.now if window is None else window
        return (self.received_bytes() * 8 / span) / 1e6 if span > 0 else 0.0


def build_point_to_point(
    sim: Simulator,
    config: NicConfig,
    n_vcs: int = 1,
    propagation_delay: float = 0.0,
    loss_ab: Optional[LossModel] = None,
    link: Optional[LinkSpec] = None,
) -> PointToPoint:
    """Wire a complete sender/receiver testbed and open *n_vcs* VCs."""
    if n_vcs < 1:
        raise ValueError("need at least one VC")
    sender = HostNetworkInterface(sim, config, name="sender")
    receiver = HostNetworkInterface(sim, config, name="receiver")
    ab, ba = connect(
        sim,
        sender,
        receiver,
        link=link,
        propagation_delay=propagation_delay,
        loss_ab=loss_ab,
    )
    vcs = []
    for _ in range(n_vcs):
        vc = sender.open_vc()
        receiver.open_vc(address=vc.address)
        vcs.append(vc.address)
    scenario = PointToPoint(
        sim=sim,
        sender=sender,
        receiver=receiver,
        vcs=vcs,
        link_ab=ab,
        link_ba=ba,
    )
    receiver.on_pdu = scenario.received.append
    return scenario


class InterleavedCellSource:
    """Feeds a receive path with round-robin interleaved VC streams.

    Each of *n_vcs* streams carries back-to-back PDUs of *sdu_size*
    bytes; the wire emits one cell per link slot, rotating across the
    streams.  With N streams, every stream's reassembly context is
    touched every N cells -- the working-set stress the CAM and the
    context table exist for.
    """

    def __init__(
        self,
        sim: Simulator,
        sink,
        link: LinkSpec,
        n_vcs: int,
        sdu_size: int,
        base_vci: int = 100,
        blocking_fifo=None,
        name: str = "interleave",
    ) -> None:
        if n_vcs < 1:
            raise ValueError("need at least one VC")
        if sdu_size < 1:
            raise ValueError("SDU size must be positive")
        self.sim = sim
        self.sink = sink
        self.link = link
        #: When set (a CellFifo), the source delivers with a *blocking*
        #: put -- modelling upstream buffering/backpressure so the
        #: receiver's sustainable rate is measured instead of its
        #: overload collapse.
        self.blocking_fifo = blocking_fifo
        self.n_vcs = n_vcs
        self.sdu_size = sdu_size
        self.name = name
        self.vcs = [VcAddress(0, base_vci + i) for i in range(n_vcs)]
        self._queues: List[List[AtmCell]] = [[] for _ in range(n_vcs)]
        self._segmenters = [Aal5Segmenter(vc) for vc in self.vcs]
        self.cells_emitted = Counter(f"{name}.cells")
        self.pdus_emitted = Counter(f"{name}.pdus")
        self._process = None

    def start(self):
        """Launch the wire process (idempotent); returns the process."""
        if self._process is None:
            if self.blocking_fifo is not None and self.sim.fast_path:
                self._process = self.sim.process(self._run_fast())
            else:
                self._process = self.sim.process(self._run())
        return self._process

    def _refill(self, stream: int) -> None:
        payload = make_payload(self.sdu_size)
        self._queues[stream] = self._segmenters[stream].segment(payload)
        self.pdus_emitted.increment()

    def _run(self):
        stream = 0
        while True:
            if not self._queues[stream]:
                self._refill(stream)
            cell = self._queues[stream].pop(0)
            if self.blocking_fifo is not None:
                yield self.blocking_fifo.put(cell)
            else:
                receive = getattr(self.sink, "receive_cell", None)
                if receive is not None:
                    receive(cell)
                else:
                    self.sink(cell)
            self.cells_emitted.increment()
            stream = (stream + 1) % self.n_vcs
            yield self.sim.timeout(self.link.cell_time)

    def _next_cell(self) -> AtmCell:
        stream = self._stream
        if not self._queues[stream]:
            self._refill(stream)
        cell = self._queues[stream].pop(0)
        self._stream = (stream + 1) % self.n_vcs
        return cell

    def _run_fast(self):
        """Burst-mode wire: same slot-spaced cell times, fewer events.

        The scalar loop puts cell *n* at ``n * cell_time`` (shifted only
        while backpressured).  Here cells are batched into pre-announced
        :class:`~repro.atm.burst.CellBurst` runs whose embedded arrivals
        are that exact slot chain; after a blocking put the chain
        restarts from the accept time, matching the scalar loop's
        post-block resumption.  See ``docs/PERFORMANCE.md``.
        """
        from repro.atm.burst import CellBurst

        self._stream = 0
        fifo = self.blocking_fifo
        slot = self.link.cell_time
        burst_len = max(
            1, min(self.sim.config.burst_cells, fifo.depth_cells // 2)
        )
        # Arrival of the next cell to emit; advanced with the same
        # iterated float adds as the scalar loop's timeout chain so the
        # values are bit-identical (cell n at exactly n * slot).
        next_arrival = 0.0
        while True:
            cells = [self._next_cell() for _ in range(burst_len)]
            arrivals = []
            for _ in range(burst_len):
                arrivals.append(next_arrival)
                next_arrival = next_arrival + slot
            accept = fifo.put_burst(CellBurst(cells, arrivals))
            blocked = not accept.triggered
            yield accept
            self.cells_emitted.increment(burst_len)
            if blocked:
                # Backpressured: the scalar chain restarts from the
                # unblock time (arrivals are engine-dominated here).
                next_arrival = max(self.sim.now, next_arrival)
            wait = next_arrival - self.sim.now
            if wait > 0:
                yield self.sim.timeout(wait)
