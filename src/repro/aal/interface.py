"""Common service interface and error taxonomy for the adaptation layers.

Both AALs expose the same shape: a *segmenter* turning service data units
(SDUs) into cells, and a *reassembler* consuming cells and emitting
:class:`SduIndication` records.  The failure taxonomy is shared so the
NIC, baselines and experiments can aggregate errors uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.atm.addressing import VcAddress


class AalError(Exception):
    """Raised for misuse of the adaptation layer API (not wire errors)."""


class ReassemblyFailure(enum.Enum):
    """Why a partially or fully received PDU was discarded."""

    CRC = "crc"  #: trailer CRC mismatch (corruption or undetected loss)
    LENGTH = "length"  #: trailer length field disagrees with bytes received
    SEQUENCE = "sequence"  #: AAL3/4 SN discontinuity
    TAG_MISMATCH = "tag-mismatch"  #: AAL3/4 BTag != ETag
    PROTOCOL = "protocol"  #: segment-type violation (COM before BOM, ...)
    OVERSIZE = "oversize"  #: PDU exceeded the maximum reassembly size
    TIMEOUT = "timeout"  #: reassembly timer expired on a partial PDU
    NO_CONTEXT = "no-context"  #: cell for a VC with no reassembly context
    QUOTA = "quota"  #: context evicted to stay within the context quota


@dataclass
class ReassemblyStats:
    """Aggregate reassembly accounting for one endpoint.

    Cell conservation: every consumed cell ends in exactly one of
    *cells_delivered* (it rode a delivered PDU), *cells_discarded_by*
    (itemised by the failure that killed its PDU), *cells_orphaned*
    (never attributable to a context -- SAR decode failures, COM/EOM
    with no open PDU), or a still-open context.  The auditor in
    :mod:`repro.faults.audit` reconciles against this invariant.
    """

    pdus_delivered: int = 0
    pdus_discarded: int = 0
    cells_consumed: int = 0
    cells_delivered: int = 0
    cells_orphaned: int = 0
    bytes_delivered: int = 0
    failures: dict = field(default_factory=dict)
    #: Cells lost with their PDU, itemised by failure cause.
    cells_discarded_by: dict = field(default_factory=dict)

    def count_failure(self, why: ReassemblyFailure, cells: int = 0) -> None:
        self.pdus_discarded += 1
        self.failures[why] = self.failures.get(why, 0) + 1
        if cells:
            self.count_discarded_cells(why, cells)

    def count_discarded_cells(self, why: ReassemblyFailure, cells: int) -> None:
        """Attribute cells to an already-counted failure (late disposition)."""
        self.cells_discarded_by[why] = self.cells_discarded_by.get(why, 0) + cells

    def failure_count(self, why: ReassemblyFailure) -> int:
        return self.failures.get(why, 0)

    @property
    def cells_discarded(self) -> int:
        return sum(self.cells_discarded_by.values())

    @property
    def discard_ratio(self) -> float:
        total = self.pdus_delivered + self.pdus_discarded
        return self.pdus_discarded / total if total else 0.0


@dataclass
class SduIndication:
    """One reassembled SDU handed up to the AAL user."""

    vc: VcAddress
    sdu: bytes
    cells: int  #: how many cells carried it
    completed_at: float  #: simulation time of the last cell
    mid: Optional[int] = None  #: AAL3/4 multiplexing id, None for AAL5
    user_indication: int = 0  #: AAL5 CPCS-UU byte

    @property
    def size(self) -> int:
        return len(self.sdu)
