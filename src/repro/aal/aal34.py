"""AAL3/4-class segmentation and reassembly.

This was *the* standardised data adaptation layer when the paper was
written.  Every 48-byte cell payload is a SAR-PDU::

    | ST (2b) | SN (4b) | MID (10b) | payload (44) | LI (6b) | CRC-10 |

- ST: segment type -- BOM (beginning of message), COM (continuation),
  EOM (end), SSM (single-segment message);
- SN: per-stream sequence number modulo 16 (detects cell loss);
- MID: multiplexing identifier, allowing several interleaved CPCS-PDUs
  on one VC;
- LI: number of valid payload bytes; CRC-10 covers the whole SAR-PDU.

The CPCS-PDU wraps the SDU with a 4-byte header (CPI, BTag, BASize) and
4-byte trailer (AL, ETag, Length), padded to a 4-byte multiple; matching
begin/end tags catch the "lost EOM merges two PDUs" hazard.

The 4-bytes-per-cell overhead of this layer versus AAL5's zero is one of
the era's central efficiency arguments, quantified in experiment T4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.aal.crc import crc10
from repro.aal.interface import (
    AalError,
    ReassemblyFailure,
    ReassemblyStats,
    SduIndication,
)
from repro.atm.addressing import VcAddress
from repro.atm.cell import PAYLOAD_SIZE, PTI_USER_SDU0, AtmCell

AAL34_SAR_PAYLOAD = 44
AAL34_MAX_SDU = 65535
_SN_MODULUS = 16
_MAX_MID = 0x3FF
_MAX_LI = AAL34_SAR_PAYLOAD


class SarSegmentType(enum.IntEnum):
    """The two-bit segment-type field."""

    COM = 0b00
    EOM = 0b01
    BOM = 0b10
    SSM = 0b11


def encode_sar_pdu(
    st: SarSegmentType,
    sn: int,
    mid: int,
    payload: bytes,
) -> bytes:
    """Build one 48-byte SAR-PDU (payload right-padded to 44 bytes)."""
    if not 0 <= sn < _SN_MODULUS:
        raise AalError(f"SN {sn} outside 0..15")
    if not 0 <= mid <= _MAX_MID:
        raise AalError(f"MID {mid} outside 0..{_MAX_MID}")
    if len(payload) > AAL34_SAR_PAYLOAD:
        raise AalError(f"SAR payload of {len(payload)} exceeds 44 bytes")
    li = len(payload)
    header = (int(st) << 14) | (sn << 10) | mid
    body = payload + bytes(AAL34_SAR_PAYLOAD - len(payload))
    # Assemble with a zeroed CRC field, then fold the CRC into the last
    # ten bits; LI occupies the top six bits of the trailer halfword.
    trailer = li << 10
    pdu = header.to_bytes(2, "big") + body + trailer.to_bytes(2, "big")
    crc = crc10(pdu)
    trailer |= crc
    return header.to_bytes(2, "big") + body + trailer.to_bytes(2, "big")


def decode_sar_pdu(pdu: bytes) -> Tuple[SarSegmentType, int, int, bytes]:
    """Parse a SAR-PDU; raises :class:`SarCrcError` on CRC-10 failure.

    Returns ``(segment_type, sn, mid, valid_payload)``.
    """
    if len(pdu) != PAYLOAD_SIZE:
        raise AalError(f"SAR-PDU must be 48 bytes, got {len(pdu)}")
    # A correct CRC leaves a zero residue when run across the whole PDU.
    if crc10(pdu) != 0:
        raise SarCrcError("CRC-10 mismatch")
    header = int.from_bytes(pdu[:2], "big")
    st = SarSegmentType((header >> 14) & 0b11)
    sn = (header >> 10) & 0xF
    mid = header & _MAX_MID
    trailer = int.from_bytes(pdu[-2:], "big")
    li = (trailer >> 10) & 0x3F
    if li > _MAX_LI:
        raise SarFormatError(f"LI {li} exceeds 44")
    return st, sn, mid, pdu[2 : 2 + li]


class SarCrcError(ValueError):
    """SAR-PDU CRC-10 failed."""


class SarFormatError(ValueError):
    """SAR-PDU fields are structurally invalid."""


def build_cpcs_pdu_34(sdu: bytes, btag: int) -> bytes:
    """Wrap an SDU in the AAL3/4 CPCS framing."""
    if len(sdu) > AAL34_MAX_SDU:
        raise AalError(f"SDU of {len(sdu)} bytes exceeds AAL3/4 maximum")
    if not 0 <= btag <= 0xFF:
        raise AalError("BTag is a single byte")
    pad = (-len(sdu)) % 4
    header = bytes((0, btag)) + len(sdu).to_bytes(2, "big")  # CPI, BTag, BASize
    trailer = bytes((0, btag)) + len(sdu).to_bytes(2, "big")  # AL, ETag, Length
    return header + sdu + bytes(pad) + trailer


def parse_cpcs_pdu_34(pdu: bytes) -> bytes:
    """Unwrap CPCS framing; raises on tag or length inconsistency."""
    if len(pdu) < 8 or len(pdu) % 4:
        raise CpcsFormatError(f"CPCS-PDU of {len(pdu)} bytes is malformed")
    btag = pdu[1]
    basize = int.from_bytes(pdu[2:4], "big")
    etag = pdu[-3]
    length = int.from_bytes(pdu[-2:], "big")
    if btag != etag:
        raise CpcsTagError(f"BTag {btag} != ETag {etag}")
    if length != basize:
        raise CpcsFormatError(f"Length {length} != BASize {basize}")
    body = pdu[4:-4]
    if not length <= len(body) < length + 4:
        raise CpcsFormatError(
            f"length field {length} inconsistent with {len(body)} body bytes"
        )
    return body[:length]


class CpcsTagError(ValueError):
    """BTag/ETag mismatch (typically a lost EOM merged two PDUs)."""


class CpcsFormatError(ValueError):
    """CPCS length or alignment inconsistency."""


class Aal34Segmenter:
    """Turns SDUs into AAL3/4 cells for one VC (and one MID stream)."""

    def __init__(self, vc: VcAddress, mid: int = 0) -> None:
        if not 0 <= mid <= _MAX_MID:
            raise AalError(f"MID {mid} outside 0..{_MAX_MID}")
        self.vc = vc
        self.mid = mid
        self._btag = 0
        self.pdus_segmented = 0
        self.cells_produced = 0

    def segment(self, sdu: bytes) -> List[AtmCell]:
        """SDU -> cells.  BTag auto-increments per PDU (mod 256)."""
        cpcs = build_cpcs_pdu_34(sdu, self._btag)
        self._btag = (self._btag + 1) & 0xFF
        pieces = [
            cpcs[i : i + AAL34_SAR_PAYLOAD]
            for i in range(0, len(cpcs), AAL34_SAR_PAYLOAD)
        ]
        cells: List[AtmCell] = []
        for i, piece in enumerate(pieces):
            if len(pieces) == 1:
                st = SarSegmentType.SSM
            elif i == 0:
                st = SarSegmentType.BOM
            elif i == len(pieces) - 1:
                st = SarSegmentType.EOM
            else:
                st = SarSegmentType.COM
            sar = encode_sar_pdu(st, i % _SN_MODULUS, self.mid, piece)
            cells.append(
                AtmCell(
                    vpi=self.vc.vpi,
                    vci=self.vc.vci,
                    payload=sar,
                    pti=PTI_USER_SDU0,
                )
            )
        self.pdus_segmented += 1
        self.cells_produced += len(cells)
        return cells


@dataclass
class _MidContext:
    """Reassembly state for one (VC, MID) stream."""

    chunks: List[bytes] = field(default_factory=list)
    next_sn: int = 0
    cells: int = 0
    poisoned: bool = False  #: error seen; discard through next EOM
    poison_reason: Optional[ReassemblyFailure] = None
    started_at: float = 0.0


class Aal34Reassembler:
    """Reassembles AAL3/4 streams, honouring MID interleaving.

    Contexts are keyed by (VC, MID).  A mid-PDU error (bad CRC, SN skip)
    *poisons* the context: remaining segments are consumed and dropped
    until the EOM resynchronises the stream, mirroring the standard's
    discard procedure.
    """

    def __init__(
        self,
        deliver: Optional[Callable[[SduIndication], None]] = None,
        max_cells: int = (AAL34_MAX_SDU + 8) // AAL34_SAR_PAYLOAD + 2,
    ) -> None:
        self.deliver = deliver
        self.max_cells = max_cells
        #: Observability hook: called as ``on_discard(vc, why, cells)``
        #: whenever a PDU's cells are finally written off (at the settle
        #: point, so the cell count is complete) -- drop tracing attaches
        #: here.
        self.on_discard: Optional[
            Callable[[VcAddress, ReassemblyFailure, int], None]
        ] = None
        self.stats = ReassemblyStats()
        self._contexts: Dict[Tuple[VcAddress, int], _MidContext] = {}

    def _notify_discard(
        self, vc: VcAddress, why: ReassemblyFailure, cells: int
    ) -> None:
        if self.on_discard is not None:
            self.on_discard(vc, why, cells)

    def active_contexts(self) -> int:
        return len(self._contexts)

    def has_context(self, vc: VcAddress, mid: int = 0) -> bool:
        """True when a PDU is mid-reassembly on (vc, mid)."""
        return (vc, mid) in self._contexts

    def open_cells(self) -> int:
        """Total cells held across all open contexts (for conservation)."""
        return sum(context.cells for context in self._contexts.values())

    def receive_cell(self, cell: AtmCell, now: float = 0.0) -> Optional[SduIndication]:
        """Consume one cell; returns an indication when a PDU completes."""
        vc = VcAddress(cell.vpi, cell.vci)
        self.stats.cells_consumed += 1
        try:
            st, sn, mid, payload = decode_sar_pdu(cell.payload)
        except SarCrcError:
            # Cannot trust any field of the PDU, including the MID: we do
            # not know which context to poison, so the cell is orphaned
            # and the owning context will fail its SN check later.
            self.stats.cells_orphaned += 1
            return None
        except (SarFormatError, AalError):
            self.stats.cells_orphaned += 1
            return None

        key = (vc, mid)
        context = self._contexts.get(key)

        if st in (SarSegmentType.BOM, SarSegmentType.SSM):
            if context is not None and context.chunks and not context.poisoned:
                # New beginning while a PDU was open: the old one lost its
                # EOM.  Discard it and start fresh.
                self.stats.count_failure(
                    ReassemblyFailure.PROTOCOL, cells=context.cells
                )
                self._notify_discard(
                    vc, ReassemblyFailure.PROTOCOL, context.cells
                )
            elif context is not None and context.poisoned:
                # A poisoned PDU is replaced before its EOM resync: its
                # accumulated cells settle into the poisoning failure.
                reason = context.poison_reason or ReassemblyFailure.PROTOCOL
                self.stats.count_discarded_cells(reason, context.cells)
                self._notify_discard(vc, reason, context.cells)
            context = _MidContext(started_at=now)
            self._contexts[key] = context
            context.next_sn = (sn + 1) % _SN_MODULUS
            context.chunks.append(payload)
            context.cells = 1
            if st is SarSegmentType.SSM:
                return self._complete(key, context, now)
            return None

        if context is None:
            # COM/EOM with no open PDU: the BOM was lost.
            self.stats.cells_orphaned += 1
            return None

        context.cells += 1
        if not context.poisoned:
            if sn != context.next_sn:
                context.poisoned = True
                context.poison_reason = ReassemblyFailure.SEQUENCE
                self.stats.count_failure(ReassemblyFailure.SEQUENCE)
            elif context.cells > self.max_cells:
                context.poisoned = True
                context.poison_reason = ReassemblyFailure.OVERSIZE
                self.stats.count_failure(ReassemblyFailure.OVERSIZE)
        context.next_sn = (sn + 1) % _SN_MODULUS
        if not context.poisoned:
            context.chunks.append(payload)

        if st is SarSegmentType.EOM:
            if context.poisoned:
                del self._contexts[key]
                reason = context.poison_reason or ReassemblyFailure.PROTOCOL
                self.stats.count_discarded_cells(reason, context.cells)
                self._notify_discard(vc, reason, context.cells)
                return None
            return self._complete(key, context, now)
        return None

    def _complete(
        self, key: Tuple[VcAddress, int], context: _MidContext, now: float
    ) -> Optional[SduIndication]:
        del self._contexts[key]
        cpcs = b"".join(context.chunks)
        try:
            sdu = parse_cpcs_pdu_34(cpcs)
        except CpcsTagError:
            self.stats.count_failure(
                ReassemblyFailure.TAG_MISMATCH, cells=context.cells
            )
            self._notify_discard(
                key[0], ReassemblyFailure.TAG_MISMATCH, context.cells
            )
            return None
        except CpcsFormatError:
            self.stats.count_failure(ReassemblyFailure.LENGTH, cells=context.cells)
            self._notify_discard(key[0], ReassemblyFailure.LENGTH, context.cells)
            return None
        vc, mid = key
        indication = SduIndication(
            vc=vc, sdu=sdu, cells=context.cells, completed_at=now, mid=mid
        )
        self.stats.pdus_delivered += 1
        self.stats.cells_delivered += context.cells
        self.stats.bytes_delivered += len(sdu)
        if self.deliver is not None:
            self.deliver(indication)
        return indication

    def abort_context(
        self, vc: VcAddress, mid: int, why: ReassemblyFailure
    ) -> bool:
        """Discard a partial PDU (timer expiry, VC teardown)."""
        context = self._contexts.pop((vc, mid), None)
        if context is None:
            return False
        if context.poisoned:
            # The PDU was already counted as a failure when poisoned;
            # only the cell disposition is still outstanding.
            reason = context.poison_reason or why
            self.stats.count_discarded_cells(reason, context.cells)
            self._notify_discard(vc, reason, context.cells)
        else:
            self.stats.count_failure(why, cells=context.cells)
            self._notify_discard(vc, why, context.cells)
        return True
