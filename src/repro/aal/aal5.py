"""AAL5-class segmentation and reassembly.

The "simple and efficient adaptation layer": the CPCS-PDU is the SDU,
zero-padded so that payload + 8-byte trailer fill an integral number of
48-byte cells.  The trailer is::

    | CPCS-UU (1) | CPI (1) | Length (2) | CRC-32 (4) |

and the last cell of a PDU is marked in the ATM header's PTI SDU-type
bit -- which is why AAL5 needs no per-cell overhead at all.  Loss of any
cell is caught by the length/CRC check over the whole CPCS-PDU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.aal.crc import CRC32_AAL5
from repro.aal.interface import (
    AalError,
    ReassemblyFailure,
    ReassemblyStats,
    SduIndication,
)
from repro.atm.addressing import VcAddress
from repro.atm.cell import (
    PAYLOAD_SIZE,
    PTI_USER_SDU0,
    PTI_USER_SDU1,
    AtmCell,
)

AAL5_TRAILER_SIZE = 8
AAL5_MAX_SDU = 65535
#: Largest AAL5 CPCS-PDU in cells: 65535-byte SDU + trailer + padding.
AAL5_MAX_CELLS = (AAL5_MAX_SDU + AAL5_TRAILER_SIZE + PAYLOAD_SIZE - 1) // PAYLOAD_SIZE


def cells_for_sdu(sdu_size: int) -> int:
    """Number of cells an SDU of *sdu_size* bytes occupies on the wire."""
    if not 0 <= sdu_size <= AAL5_MAX_SDU:
        raise AalError(f"SDU size {sdu_size} outside 0..{AAL5_MAX_SDU}")
    return max(1, (sdu_size + AAL5_TRAILER_SIZE + PAYLOAD_SIZE - 1) // PAYLOAD_SIZE)


def build_cpcs_pdu(sdu: bytes, uu: int = 0, cpi: int = 0) -> bytes:
    """SDU -> padded CPCS-PDU with trailer (an exact multiple of 48)."""
    if len(sdu) > AAL5_MAX_SDU:
        raise AalError(f"SDU of {len(sdu)} bytes exceeds AAL5 maximum")
    if not 0 <= uu <= 0xFF or not 0 <= cpi <= 0xFF:
        raise AalError("UU and CPI are single bytes")
    pad_len = (-(len(sdu) + AAL5_TRAILER_SIZE)) % PAYLOAD_SIZE
    body = sdu + bytes(pad_len)
    trailer_head = bytes((uu, cpi)) + len(sdu).to_bytes(2, "big")
    return CRC32_AAL5.append(body + trailer_head)


def parse_cpcs_pdu(pdu: bytes) -> Tuple[bytes, int, int]:
    """CPCS-PDU -> (sdu, uu, cpi); raises ValueError-family on corruption.

    Raises :class:`CpcsCrcError` or :class:`CpcsLengthError` so callers
    can map failures onto the shared taxonomy.
    """
    if len(pdu) < AAL5_TRAILER_SIZE or len(pdu) % PAYLOAD_SIZE:
        raise CpcsLengthError(f"CPCS-PDU of {len(pdu)} bytes is malformed")
    if not CRC32_AAL5.residue_ok(pdu):
        raise CpcsCrcError("CRC-32 mismatch")
    uu = pdu[-8]
    cpi = pdu[-7]
    length = int.from_bytes(pdu[-6:-4], "big")
    max_payload = len(pdu) - AAL5_TRAILER_SIZE
    if length > max_payload or max_payload - length >= PAYLOAD_SIZE:
        raise CpcsLengthError(
            f"length field {length} inconsistent with {len(pdu)}-byte PDU"
        )
    return pdu[:length], uu, cpi


class CpcsCrcError(ValueError):
    """CPCS CRC-32 failed."""


class CpcsLengthError(ValueError):
    """CPCS length field inconsistent with received bytes."""


class Aal5Segmenter:
    """Turns SDUs into ready-to-send cells for one VC."""

    def __init__(self, vc: VcAddress) -> None:
        self.vc = vc
        self.pdus_segmented = 0
        self.cells_produced = 0

    def segment(self, sdu: bytes, uu: int = 0, cpi: int = 0) -> List[AtmCell]:
        """SDU -> list of cells; the final cell carries the PTI EOF mark."""
        pdu = build_cpcs_pdu(sdu, uu=uu, cpi=cpi)
        cells: List[AtmCell] = []
        n_cells = len(pdu) // PAYLOAD_SIZE
        for i in range(n_cells):
            chunk = pdu[i * PAYLOAD_SIZE : (i + 1) * PAYLOAD_SIZE]
            last = i == n_cells - 1
            cells.append(
                AtmCell(
                    vpi=self.vc.vpi,
                    vci=self.vc.vci,
                    payload=chunk,
                    pti=PTI_USER_SDU1 if last else PTI_USER_SDU0,
                )
            )
        self.pdus_segmented += 1
        self.cells_produced += len(cells)
        return cells


@dataclass
class _PartialPdu:
    """Accumulating reassembly state for one VC."""

    chunks: List[bytes] = field(default_factory=list)
    cells: int = 0
    started_at: float = 0.0


class Aal5Reassembler:
    """Reassembles interleaved VCs' cell streams back into SDUs.

    Feed every received cell to :meth:`receive_cell`; completed SDUs are
    handed to *deliver* (or returned).  A cell on a VC without prior
    context implicitly opens a context -- AAL5 needs no signalling to
    reassemble, only the EOF bit.  Loss of an EOF cell merges two PDUs;
    the CRC/length check then discards the merged mess, which is exactly
    AAL5's documented failure mode.
    """

    def __init__(
        self,
        deliver: Optional[Callable[[SduIndication], None]] = None,
        max_cells: int = AAL5_MAX_CELLS,
        max_contexts: Optional[int] = None,
    ) -> None:
        if max_cells < 1:
            raise AalError("max_cells must be >= 1")
        if max_contexts is not None and max_contexts < 1:
            raise AalError("max_contexts must be >= 1 or None")
        self.deliver = deliver
        self.max_cells = max_cells
        #: Quota on simultaneously open reassembly contexts.  A first
        #: cell arriving while the table is full evicts the *oldest*
        #: open context (QUOTA failure) -- bounded context memory is a
        #: hardware reality, and oldest-first is the right victim: the
        #: oldest partial PDU is the likeliest to have a lost tail.
        self.max_contexts = max_contexts
        #: Called with the evicted VC (after the context is gone) so the
        #: owner can reclaim buffer memory and timers.
        self.on_evict: Optional[Callable[[VcAddress], None]] = None
        #: Observability hook: called as ``on_discard(vc, why, cells)``
        #: for every PDU the reassembler gives up on, alongside the
        #: stats ledger -- this is where drop *tracing* attaches.
        self.on_discard: Optional[
            Callable[[VcAddress, ReassemblyFailure, int], None]
        ] = None
        self.stats = ReassemblyStats()
        self._partial: Dict[VcAddress, _PartialPdu] = {}

    def _discarded(
        self, vc: VcAddress, why: ReassemblyFailure, cells: int
    ) -> None:
        self.stats.count_failure(why, cells=cells)
        if self.on_discard is not None:
            self.on_discard(vc, why, cells)

    def active_contexts(self) -> int:
        """Number of VCs with a PDU currently mid-reassembly."""
        return len(self._partial)

    def has_context(self, vc: VcAddress) -> bool:
        """True when a PDU is mid-reassembly on *vc*."""
        return vc in self._partial

    def context_cells(self, vc: VcAddress) -> int:
        """Cells so far in the VC's partial PDU (0 if none open)."""
        partial = self._partial.get(vc)
        return 0 if partial is None else partial.cells

    def open_cells(self) -> int:
        """Total cells held across all open contexts (for conservation)."""
        return sum(partial.cells for partial in self._partial.values())

    def _evict_oldest(self) -> None:
        """Make room for a new context: QUOTA-discard the oldest one."""
        victim = next(iter(self._partial))  # insertion order == open order
        partial = self._partial.pop(victim)
        self._discarded(victim, ReassemblyFailure.QUOTA, partial.cells)
        if self.on_evict is not None:
            self.on_evict(victim)

    def receive_cell(self, cell: AtmCell, now: float = 0.0) -> Optional[SduIndication]:
        """Consume one cell; returns the SDU indication on completion."""
        vc = VcAddress(cell.vpi, cell.vci)
        self.stats.cells_consumed += 1
        partial = self._partial.get(vc)
        if partial is None:
            if (
                self.max_contexts is not None
                and len(self._partial) >= self.max_contexts
            ):
                self._evict_oldest()
            partial = _PartialPdu(started_at=now)
            self._partial[vc] = partial
        partial.chunks.append(cell.payload)
        partial.cells += 1

        if partial.cells > self.max_cells:
            del self._partial[vc]
            self._discarded(vc, ReassemblyFailure.OVERSIZE, partial.cells)
            return None
        if not cell.end_of_frame:
            return None

        del self._partial[vc]
        pdu = b"".join(partial.chunks)
        try:
            sdu, uu, _cpi = parse_cpcs_pdu(pdu)
        except CpcsCrcError:
            self._discarded(vc, ReassemblyFailure.CRC, partial.cells)
            return None
        except CpcsLengthError:
            self._discarded(vc, ReassemblyFailure.LENGTH, partial.cells)
            return None
        indication = SduIndication(
            vc=vc,
            sdu=sdu,
            cells=partial.cells,
            completed_at=now,
            user_indication=uu,
        )
        self.stats.pdus_delivered += 1
        self.stats.cells_delivered += partial.cells
        self.stats.bytes_delivered += len(sdu)
        if self.deliver is not None:
            self.deliver(indication)
        return indication

    def abort_context(self, vc: VcAddress, why: ReassemblyFailure) -> bool:
        """Discard a partial PDU (timer expiry, VC teardown)."""
        partial = self._partial.pop(vc, None)
        if partial is None:
            return False
        self._discarded(vc, why, partial.cells)
        return True

    def context_age(self, vc: VcAddress, now: float) -> Optional[float]:
        """Seconds the VC's partial PDU has been open, or None."""
        partial = self._partial.get(vc)
        return None if partial is None else now - partial.started_at
