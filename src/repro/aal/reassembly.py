"""Reassembly timers.

A receiver must not hold partial PDUs forever: when the tail of a PDU is
lost, its context would otherwise leak buffer memory and (for AAL3/4)
poison the MID stream.  The timer wheel here is the standard coarse
design hardware of the era used -- a periodic sweep at a fixed tick,
expiring any context older than the timeout.  Precision is one tick,
which is the right trade: per-context precise timers would cost a timer
op per cell.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.sim.core import Simulator
from repro.sim.monitor import Counter


class ReassemblyTimerWheel:
    """Coarse timeout tracking for reassembly contexts.

    Usage::

        wheel = ReassemblyTimerWheel(sim, timeout=0.5, tick=0.1,
                                     on_expire=expire_context)
        wheel.arm(vc)        # on first cell of a PDU
        wheel.touch(vc)      # optionally, on every cell (sliding timeout)
        wheel.disarm(vc)     # on PDU completion
        wheel.start()

    ``on_expire(key)`` is called from the sweep when a key's last activity
    is older than *timeout*; the key is removed first, so re-arming from
    the callback is safe.
    """

    def __init__(
        self,
        sim: Simulator,
        timeout: float,
        tick: float,
        on_expire: Callable[[Hashable], None],
        name: str = "reassembly-timers",
    ) -> None:
        if timeout <= 0 or tick <= 0:
            raise ValueError("timeout and tick must be positive")
        self.sim = sim
        self.timeout = timeout
        self.tick = tick
        self.on_expire = on_expire
        self.name = name
        self._deadlines: Dict[Hashable, float] = {}
        self._running = False
        self.expirations = Counter(f"{name}.expired")

    def __len__(self) -> int:
        return len(self._deadlines)

    def arm(self, key: Hashable) -> None:
        """Begin (or restart) timing *key*."""
        self._deadlines[key] = self.sim.now + self.timeout

    # A sliding timeout is a re-arm.
    touch = arm

    def disarm(self, key: Hashable) -> bool:
        """Stop timing *key*; False if it was not armed."""
        return self._deadlines.pop(key, None) is not None

    def deadline_of(self, key: Hashable) -> Optional[float]:
        return self._deadlines.get(key)

    def start(self) -> None:
        """Launch the periodic sweep process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._sweeper())

    def stop(self) -> None:
        """Stop sweeping after the current tick."""
        self._running = False

    def _sweeper(self):
        while self._running:
            yield self.sim.timeout(self.tick)
            self.sweep()

    def sweep(self) -> int:
        """Expire every overdue key now; returns how many fired."""
        now = self.sim.now
        expired = [k for k, dl in self._deadlines.items() if dl <= now]
        for key in expired:
            del self._deadlines[key]
            self.expirations.increment()
            self.on_expire(key)
        return len(expired)
