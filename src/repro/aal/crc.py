"""CRC algorithms used by the adaptation layers.

Both AAL CRCs are MSB-first (non-reflected) polynomial divisions:

- **CRC-32** for the AAL5-class trailer: generator 0x04C11DB7, initial
  register all-ones, final complement (I.363).
- **CRC-10** for the AAL3/4 SAR-PDU trailer: generator
  x^10+x^9+x^5+x^4+x+1 (0x633), zero initial value, no final XOR.

The engine is table-driven with an incremental API so a receiver can
accumulate the CRC cell by cell, exactly as streaming SAR hardware does.
A bit-serial reference implementation is included for cross-checking in
the test suite.
"""

from __future__ import annotations

from typing import List


class CrcAlgorithm:
    """A parameterised MSB-first CRC with table-driven incremental update."""

    def __init__(
        self,
        name: str,
        width: int,
        polynomial: int,
        initial: int,
        final_xor: int,
    ) -> None:
        if width < 8 or width > 64:
            raise ValueError("width must be in 8..64")
        self.name = name
        self.width = width
        self.polynomial = polynomial
        self.initial = initial
        self.final_xor = final_xor
        self._mask = (1 << width) - 1
        self._top_bit = 1 << (width - 1)
        self._table = self._build_table()
        # One-shot results memoised by message bytes: synthetic
        # workloads recompute the CRC of the same payload for every
        # PDU, and the table-driven byte loop dominated their runtime.
        self._memo: dict = {}

    def _build_table(self) -> List[int]:
        table = []
        shift = self.width - 8
        for byte in range(256):
            register = byte << shift
            for _ in range(8):
                if register & self._top_bit:
                    register = ((register << 1) ^ self.polynomial) & self._mask
                else:
                    register = (register << 1) & self._mask
            table.append(register)
        return table

    # -- incremental interface ----------------------------------------------

    def start(self) -> int:
        """Fresh accumulator state."""
        return self.initial

    def update(self, state: int, data: bytes) -> int:
        """Fold *data* into the accumulator; returns the new state."""
        table = self._table
        shift = self.width - 8
        mask = self._mask
        for byte in data:
            state = ((state << 8) ^ table[((state >> shift) & 0xFF) ^ byte]) & mask
        return state

    def finish(self, state: int) -> int:
        """Final CRC value from accumulator state."""
        return state ^ self.final_xor

    # -- one-shot interface ---------------------------------------------------

    def compute(self, data: bytes) -> int:
        """CRC of *data* in one call (memoised on the message bytes)."""
        result = self._memo.get(data)
        if result is None:
            result = self.finish(self.update(self.start(), data))
            if len(self._memo) >= 512:
                self._memo.clear()
            self._memo[data] = result
        return result

    def residue_ok(self, data_with_crc: bytes) -> bool:
        """Verify a message whose CRC field was appended MSB-first.

        For these non-reflected CRCs, running the register over message
        plus transmitted CRC yields a constant residue: 0 for zero
        final-XOR, or the algorithm's known residue for complemented
        CRCs.  We verify by direct recompute, which is equivalent and
        clearer.
        """
        nbytes = self.width // 8
        if len(data_with_crc) < nbytes:
            return False
        body, field = data_with_crc[:-nbytes], data_with_crc[-nbytes:]
        return self.compute(body) == int.from_bytes(field, "big")

    def append(self, data: bytes) -> bytes:
        """Return *data* with its CRC appended MSB-first."""
        nbytes = self.width // 8
        return data + self.compute(data).to_bytes(nbytes, "big")

    def bitwise_reference(self, data: bytes) -> int:
        """Slow bit-serial implementation for cross-validation in tests."""
        register = self.initial
        for byte in data:
            for bit in range(8):
                incoming = (byte >> (7 - bit)) & 1
                msb = (register >> (self.width - 1)) & 1
                register = (register << 1) & self._mask
                if msb ^ incoming:
                    register ^= self.polynomial
        return register ^ self.final_xor

    def __repr__(self) -> str:
        return (
            f"CrcAlgorithm({self.name}, width={self.width}, "
            f"poly=0x{self.polynomial:X})"
        )


CRC32_AAL5 = CrcAlgorithm(
    name="crc32-aal5",
    width=32,
    polynomial=0x04C11DB7,
    initial=0xFFFFFFFF,
    final_xor=0xFFFFFFFF,
)

def crc10(data: bytes) -> int:
    """Residue of *data* (as a polynomial) modulo the AAL3/4 generator.

    The generator is x^10 + x^9 + x^5 + x^4 + x + 1 (0x633 including the
    leading term).  Usage follows the SAR-PDU convention: the transmitter
    computes the residue of the PDU *with the 10-bit CRC field zeroed*
    (which is the message times x^10) and stores it in the field; the
    receiver checks that the residue of the full PDU is zero.

    Implemented bit-serially because the 10-bit width does not fit the
    byte-table engine; 48-byte SAR-PDUs keep this cheap.
    """
    register = 0
    for byte in data:
        for bit in range(8):
            register = (register << 1) | ((byte >> (7 - bit)) & 1)
            if register & 0x400:
                register ^= 0x633
    return register & 0x3FF
