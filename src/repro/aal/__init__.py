"""ATM adaptation layers: segmentation and reassembly (SAR).

Two adaptation layers are implemented functionally, bytes-in/bytes-out:

- :mod:`repro.aal.aal5` -- the simple-and-efficient adaptation layer
  (pad + 8-byte trailer with CRC-32, last-cell flag in the PTI).  This is
  the lineage the paper's "computer data" path anticipates.
- :mod:`repro.aal.aal34` -- the 1991-standard AAL3/4 SAR with per-cell
  ST/SN/MID headers, LI and CRC-10 trailer, and CPCS BTag/ETag framing,
  including MID multiplexing of interleaved PDUs on one VC.

The host interface's protocol engines (:mod:`repro.nic`) call into these
for the functional transformation and charge cycle budgets for the work;
the same code runs un-budgeted in the host-based SAR baseline.
"""

from repro.aal.crc import CRC32_AAL5, CrcAlgorithm, crc10
from repro.aal.aal5 import (
    AAL5_MAX_SDU,
    AAL5_TRAILER_SIZE,
    Aal5Reassembler,
    Aal5Segmenter,
    build_cpcs_pdu,
    parse_cpcs_pdu,
)
from repro.aal.aal34 import (
    AAL34_SAR_PAYLOAD,
    Aal34Reassembler,
    Aal34Segmenter,
    SarSegmentType,
)
from repro.aal.interface import (
    AalError,
    ReassemblyFailure,
    ReassemblyStats,
    SduIndication,
)
from repro.aal.reassembly import ReassemblyTimerWheel

__all__ = [
    "AAL34_SAR_PAYLOAD",
    "AAL5_MAX_SDU",
    "AAL5_TRAILER_SIZE",
    "Aal34Reassembler",
    "Aal34Segmenter",
    "Aal5Reassembler",
    "Aal5Segmenter",
    "AalError",
    "CRC32_AAL5",
    "CrcAlgorithm",
    "crc10",
    "ReassemblyFailure",
    "ReassemblyStats",
    "ReassemblyTimerWheel",
    "SarSegmentType",
    "SduIndication",
    "build_cpcs_pdu",
    "parse_cpcs_pdu",
]
