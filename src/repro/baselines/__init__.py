"""Baseline architectures the paper's design is judged against.

- :mod:`repro.baselines.host_sar` -- segmentation and reassembly in host
  software over a dumb cell-FIFO adaptor: the *status quo ante* that
  motivates offload (per-cell interrupts, per-byte CRC on the host CPU).
- :mod:`repro.baselines.hardwired` -- a fully hardwired VLSI SAR: the
  fast-but-frozen alternative the paper argues against on flexibility
  grounds; here it quantifies the performance ceiling.
- :mod:`repro.baselines.shared_proc` -- a single protocol processor
  serving both directions, the cheaper design point whose contention
  shows why the paper uses one engine per direction.
"""

from repro.baselines.hardwired import (
    HARDWIRED_RX_COSTS,
    HARDWIRED_TX_COSTS,
    hardwired_config,
)
from repro.baselines.host_sar import (
    HostSarConfig,
    HostSarCostModel,
    HostSarInterface,
)
from repro.baselines.shared_proc import SharedEngineClock, share_engine

__all__ = [
    "HARDWIRED_RX_COSTS",
    "HARDWIRED_TX_COSTS",
    "HostSarConfig",
    "HostSarCostModel",
    "HostSarInterface",
    "SharedEngineClock",
    "hardwired_config",
    "share_engine",
]
