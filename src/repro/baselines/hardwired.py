"""Baseline (b): fully hardwired VLSI segmentation and reassembly.

The alternative the paper weighs programmability against: dedicated
state machines that do the per-cell work in a couple of clocks.  We
model it by reusing the *entire* offloaded pipeline with near-zero
cycle budgets -- so any measured difference against the programmable
interface is purely the engine budgets, never plumbing differences.

Hardwired logic is fast but frozen: it cannot track an evolving
adaptation-layer standard (the paper's key argument in 1991, when the
AALs were still in committee).  That trade-off is qualitative; the
quantitative side -- the ceiling hardware sets -- is experiment T5.
"""

from __future__ import annotations

from dataclasses import replace

from repro.atm.link import LinkSpec, STS12C_622
from repro.nic.config import NicConfig
from repro.nic.costs import EngineSpec, RxCostModel, TxCostModel

#: One state-machine transition per operation; per-PDU work is a short
#: microcode sequence.  Clocked at the cell clock domain (40 MHz class).
HARDWIRED_TX_COSTS = TxCostModel(
    descriptor_fetch=4,
    dma_setup=4,
    header_template_load=1,
    completion_writeback=4,
    cell_build=1,
    buffer_advance=1,
    fifo_push=1,
    crc_per_cell=0,
    trailer_build=2,
)

HARDWIRED_RX_COSTS = RxCostModel(
    fifo_pop=1,
    header_parse=1,
    vci_lookup_cam=1,
    vci_lookup_software=1,
    vci_lookup_software_per_entry=0.0,
    context_update=1,
    payload_store=1,
    crc_per_cell=0,
    context_open=4,
    final_check=2,
    completion=6,
)

HARDWIRED_CLOCK = EngineSpec("hardwired-40MHz", 40e6)


def hardwired_config(link: LinkSpec = STS12C_622, base: NicConfig | None = None) -> NicConfig:
    """A NicConfig whose 'engines' are dedicated hardware."""
    config = base if base is not None else NicConfig()
    return replace(
        config,
        link=link,
        tx_engine=HARDWIRED_CLOCK,
        rx_engine=HARDWIRED_CLOCK,
        tx_costs=HARDWIRED_TX_COSTS,
        rx_costs=HARDWIRED_RX_COSTS,
    )
