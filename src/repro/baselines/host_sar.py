"""Baseline (a): host-software SAR over a dumb cell-FIFO adaptor.

The pre-offload world: the adaptor is nothing but link framing plus two
cell FIFOs.  The host CPU does everything per cell --

- **transmit**: build each cell (header, SAR bookkeeping, software
  CRC-32 accumulation) and push it to the adaptor with programmed I/O
  across the system bus;
- **receive**: take an *interrupt per cell*, pull the cell across the
  bus, classify it, and run reassembly + CRC in the kernel.

Every per-cell term here lands on the same CPU that applications need,
which is the quantitative case for the paper's architecture (T3/T5).
The functional work reuses :mod:`repro.aal` byte-for-byte, so baseline
and offloaded interface differ *only* in where cycles are charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.aal.aal5 import Aal5Reassembler, Aal5Segmenter
from repro.atm.addressing import VcAddress
from repro.atm.cell import CELL_SIZE, AtmCell
from repro.atm.link import LinkSpec, PhysicalLink, STS3C_155
from repro.atm.vc import ServiceClass, VcTable, VirtualConnection
from repro.host.bus import BusSpec, SystemBus, TURBOCHANNEL
from repro.host.cpu import CpuSpec, HostCpu, R3000_25MHZ
from repro.host.interrupts import InterruptController, InterruptSpec
from repro.host.os_model import HostOs, OsCostModel
from repro.nic.descriptors import RxCompletion
from repro.nic.fifo import CellFifo
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, ThroughputMeter
from repro.sim.resources import Store


@dataclass(frozen=True)
class HostSarCostModel:
    """Host CPU cycle costs of software segmentation/reassembly."""

    #: Per-cell segmentation bookkeeping (header build, length, pointers).
    tx_cell_overhead: int = 60
    #: Per-cell reassembly bookkeeping (classify, link into PDU).
    rx_cell_overhead: int = 80
    #: Software CRC-32, cycles per byte (table-driven on a 1991 RISC).
    crc_cycles_per_byte: float = 5.2
    #: Driver body of the per-cell receive interrupt (on top of the
    #: controller's entry/exit cycles).
    rx_interrupt_handler: int = 120
    #: Per-PDU trailer/descriptor work on each side.
    tx_pdu_overhead: int = 120
    rx_pdu_overhead: int = 150

    def tx_cell_cycles(self) -> float:
        return self.tx_cell_overhead + self.crc_cycles_per_byte * 48

    def rx_cell_cycles(self) -> float:
        return self.rx_cell_overhead + self.crc_cycles_per_byte * 48


@dataclass(frozen=True)
class HostSarConfig:
    """Configuration of the host-SAR baseline machine."""

    host_cpu: CpuSpec = R3000_25MHZ
    bus: BusSpec = TURBOCHANNEL
    os_costs: OsCostModel = field(default_factory=OsCostModel)
    interrupt: InterruptSpec = field(default_factory=InterruptSpec)
    sar_costs: HostSarCostModel = field(default_factory=HostSarCostModel)
    link: LinkSpec = STS3C_155
    tx_fifo_cells: int = 32
    rx_fifo_cells: int = 32
    tx_queue_pdus: int = 64


class HostSarInterface:
    """A workstation doing SAR in software (public API mirrors the NIC)."""

    def __init__(self, sim: Simulator, config: HostSarConfig, name: str = "hostsar"):
        self.sim = sim
        self.config = config
        self.name = name
        self.cpu = HostCpu(sim, config.host_cpu, name=f"{name}.cpu")
        self.bus = SystemBus(sim, config.bus, name=f"{name}.bus")
        self.interrupts = InterruptController(
            sim, self.cpu, config.interrupt, name=f"{name}.intc"
        )
        self.os = HostOs(self.cpu, config.os_costs)
        self.vc_table = VcTable()
        self.tx_fifo = CellFifo(sim, config.tx_fifo_cells, name=f"{name}.txfifo")
        self.rx_fifo = CellFifo(sim, config.rx_fifo_cells, name=f"{name}.rxfifo")
        self._tx_queue = Store(sim, capacity=config.tx_queue_pdus)
        self._segmenters: dict[VcAddress, Aal5Segmenter] = {}
        self.reassembler = Aal5Reassembler()
        self.link: Optional[PhysicalLink] = None
        self.on_pdu: Optional[Callable[[RxCompletion], None]] = None
        self.pdus_sent = Counter(f"{name}.pdus-tx")
        self.pdus_received = Counter(f"{name}.pdus-rx")
        self.tx_throughput = ThroughputMeter(sim)
        self.rx_throughput = ThroughputMeter(sim)
        self._started = False

    # -- wiring (same shape as HostNetworkInterface) -----------------------

    def attach_tx_link(self, link: PhysicalLink) -> None:
        self.link = link

    @property
    def rx_input(self):
        return self

    def open_vc(
        self,
        address: Optional[VcAddress] = None,
        peak_rate_bps: Optional[float] = None,
        service_class: ServiceClass = ServiceClass.DATA,
        name: str = "",
    ) -> VirtualConnection:
        return self.vc_table.open(
            address=address,
            service_class=service_class,
            peak_rate_bps=peak_rate_bps,
            name=name,
        )

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._tx_loop())
        self.sim.process(self._framer_loop())

    # -- transmit ----------------------------------------------------------

    def send(self, address: VcAddress, sdu: bytes, user_indication: int = 0):
        """Process-style send; event fires when the PDU is queued."""
        if self.vc_table.lookup(address) is None:
            raise ValueError(f"VC {address} is not open on {self.name}")
        self.start()
        return self.sim.process(self._send(address, sdu, user_indication))

    post = send

    def _send(self, address: VcAddress, sdu: bytes, user_indication: int):
        yield self.os.send(len(sdu))
        yield self._tx_queue.put((address, sdu, user_indication))

    def _tx_loop(self):
        costs = self.config.sar_costs
        while True:
            address, sdu, uu = yield self._tx_queue.get()
            segmenter = self._segmenters.get(address)
            if segmenter is None:
                segmenter = Aal5Segmenter(address)
                self._segmenters[address] = segmenter
            yield self.cpu.execute(costs.tx_pdu_overhead, tag="sar-tx-pdu")
            cells = segmenter.segment(sdu, uu=uu)
            for cell in cells:
                # Software segmentation + CRC, then programmed I/O of the
                # whole 53-byte cell across the bus to the adaptor FIFO.
                yield self.cpu.execute(costs.tx_cell_cycles(), tag="sar-tx-cell")
                yield self.bus.transfer(CELL_SIZE, master="pio-tx")
                yield self.tx_fifo.put(cell)
            self.pdus_sent.increment()
            self.tx_throughput.account(len(sdu))

    def _framer_loop(self):
        while True:
            cell = yield self.tx_fifo.get()
            if self.link is None:
                raise RuntimeError(f"{self.name} has no link attached")
            yield self.link.send(cell)

    # -- receive --------------------------------------------------------------

    def receive_cell(self, cell: AtmCell) -> None:
        """Link sink: every cell costs the host an interrupt."""
        if not self.rx_fifo.try_put(cell):
            return
        self.interrupts.raise_interrupt(
            self.config.sar_costs.rx_interrupt_handler,
            handler=self._handle_rx_interrupt,
        )

    def _handle_rx_interrupt(self) -> None:
        cell = self.rx_fifo.try_get()
        if cell is None:
            return
        self.sim.process(self._absorb_cell(cell))

    def _absorb_cell(self, cell: AtmCell):
        costs = self.config.sar_costs
        # Pull the cell across the bus, then reassemble in the kernel.
        yield self.bus.transfer(CELL_SIZE, master="pio-rx")
        yield self.cpu.execute(costs.rx_cell_cycles(), tag="sar-rx-cell")
        vc = VcAddress(cell.vpi, cell.vci)
        if self.vc_table.lookup(vc) is None:
            return
        indication = self.reassembler.receive_cell(cell, now=self.sim.now)
        if indication is None:
            return
        yield self.cpu.execute(costs.rx_pdu_overhead, tag="sar-rx-pdu")
        yield self.os.receive(indication.size)
        self.pdus_received.increment()
        self.rx_throughput.account(indication.size)
        if self.on_pdu is not None:
            completion = RxCompletion(
                vc=vc,
                sdu=indication.sdu,
                buffer=None,
                received_at=indication.completed_at,
                delivered_at=self.sim.now,
                cells=indication.cells,
                user_indication=indication.user_indication,
                posted_at=cell.meta.get("posted_at"),
            )
            self.on_pdu(completion)

    # -- observability ------------------------------------------------------------

    def host_cycles_per_pdu(self) -> float:
        """Mean host CPU cycles burned per PDU moved (tx + rx)."""
        pdus = self.pdus_sent.count + self.pdus_received.count
        return self.cpu.total_cycles / pdus if pdus else 0.0
