"""Baseline (c): a single protocol processor shared by both directions.

Halving the part count is tempting, but transmit and receive then
contend for the same instruction stream.  Under bidirectional load the
shared engine's effective per-direction rate halves and -- worse --
receive work queues behind transmit bursts, turning engine contention
into receive-FIFO overflow (cells lost), which the dual-engine design
never exhibits.  Experiment T5 quantifies this.

Implementation: a :class:`SharedEngineClock` serialises ``work`` calls
through a capacity-1 resource; :func:`share_engine` rebinds both of an
interface's pipelines onto one such clock.
"""

from __future__ import annotations

from repro.nic.costs import EngineSpec
from repro.nic.engine import EngineClock
from repro.nic.nic import HostNetworkInterface
from repro.sim.core import Simulator
from repro.sim.process import Process
from repro.sim.resources import Resource


class SharedEngineClock(EngineClock):
    """An engine clock whose callers contend for one instruction stream.

    ``work`` returns a process event: acquire the engine, run the
    cycles, release.  Program order within each pipeline still holds;
    across pipelines the arbitration is FIFO.
    """

    def __init__(self, sim: Simulator, spec: EngineSpec, name: str = "shared-engine"):
        super().__init__(sim, spec, name)
        self._stream = Resource(sim, capacity=1, name=f"{name}.stream")

    def work(self, cycles: float, tag: str = "work") -> Process:
        if cycles < 0:
            raise ValueError("negative cycle count")
        return self.sim.process(self._contended(cycles, tag))

    def _contended(self, cycles: float, tag: str):
        grant = self._stream.request()
        yield grant
        duration = self.spec.seconds_for(cycles)
        self._busy_time += duration
        self.cycles_by_tag[tag] = self.cycles_by_tag.get(tag, 0.0) + cycles
        yield self.sim.timeout(duration)
        self._stream.release(grant)

    @property
    def contention_wait(self) -> float:
        """Mean time work items queued for the shared stream."""
        return self._stream.mean_wait


def share_engine(
    nic: HostNetworkInterface, spec: EngineSpec | None = None
) -> SharedEngineClock:
    """Rebind *nic*'s TX and RX pipelines onto one shared engine.

    Must be called before the interface starts.  Returns the shared
    clock for inspection.  The engine spec defaults to the interface's
    TX engine spec.
    """
    engine_spec = spec if spec is not None else nic.config.tx_engine
    shared = SharedEngineClock(
        nic.sim, engine_spec, name=f"{nic.name}.shared-engine"
    )
    nic.tx_clock = shared
    nic.rx_clock = shared
    nic.tx_engine.clock = shared
    nic.rx_engine.clock = shared
    return shared
