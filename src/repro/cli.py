"""Command-line entry point: regenerate evaluation tables and figures.

Usage::

    python -m repro --list
    python -m repro T1 F2 F3
    python -m repro --all
    python -m repro F7 --workers 4            # parallel sweep execution
    python -m repro bench --check             # baseline regression gate
    python -m repro trace f2 --out trace.json
    python -m repro lint --docs

Sweep-shaped experiments (F6, T5, F7, R1) run through
:mod:`repro.runner`: ``--workers N`` shards their points over a process
pool with results byte-identical to a serial run, and the
content-addressed ``.repro-cache/`` store skips points whose parameters
and cost models are unchanged (``--no-cache`` bypasses it,
``--cache-dir`` relocates it, ``--log`` records the JSONL flight
recorder).  The ``bench`` subcommand runs the reduced benchmark set
and, with ``--check``, gates it against committed baselines (see
docs/RUNNER.md).  The ``trace`` subcommand re-runs an experiment's
scenario fully instrumented (see :mod:`repro.obs`) and exports a
Perfetto-loadable trace plus sampled metrics.  The ``lint`` subcommand
runs ``simlint`` (see :mod:`repro.devtools` and
docs/STATIC_ANALYSIS.md), the repo's static-analysis pass over the
simulator's invariants.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.results.experiments import EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    from repro.runner import registry

    parser = argparse.ArgumentParser(
        prog="repro-atm",
        description=(
            "Reproduction harness for 'A Host-Network Interface "
            "Architecture for ATM' (SIGCOMM '91)"
        ),
        epilog="experiments:\n" + registry.describe(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (T1 T2 F2 ... F8)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="process-pool width for sweep-shaped experiments (0 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the .repro-cache result store",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-store location (default: .repro-cache)",
    )
    parser.add_argument(
        "--log",
        metavar="PATH",
        default=None,
        help="write sweep runs' JSONL log here",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        from repro.obs.runner import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.devtools.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.runner.bench import main as bench_main

        return bench_main(argv[1:])

    from repro.runner import ResultStore, RunLog, registry

    args = build_parser().parse_args(argv)
    if args.list:
        for entry in registry.entries():
            print(f"{entry.id:4s} {entry.description}")
        return 0
    ids = list(EXPERIMENTS) if args.all else [e.upper() for e in args.experiments]
    if not ids:
        build_parser().print_help()
        return 2
    store = None if args.no_cache else ResultStore(root=args.cache_dir)
    log = RunLog(args.log) if args.log is not None else None
    try:
        for experiment_id in ids:
            started = time.perf_counter()
            try:
                entry = registry.get(experiment_id)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            result = entry(workers=args.workers, store=store, log=log)
            elapsed = time.perf_counter() - started
            print(result.to_text())
            print(f"  [{experiment_id.upper()} completed in {elapsed:.1f}s]")
            print()
    finally:
        if log is not None:
            log.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
