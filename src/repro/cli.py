"""Command-line entry point: regenerate evaluation tables and figures.

Usage::

    python -m repro --list
    python -m repro T1 F2 F3
    python -m repro --all
    python -m repro trace f2 --out trace.json
    python -m repro lint --docs

The ``trace`` subcommand re-runs an experiment's scenario fully
instrumented (see :mod:`repro.obs`) and exports a Perfetto-loadable
trace plus sampled metrics.  The ``lint`` subcommand runs ``simlint``
(see :mod:`repro.devtools` and docs/STATIC_ANALYSIS.md), the repo's
static-analysis pass over the simulator's invariants.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.results.experiments import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-atm",
        description=(
            "Reproduction harness for 'A Host-Network Interface "
            "Architecture for ATM' (SIGCOMM '91)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (T1 T2 F2 ... F8)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        from repro.obs.runner import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.devtools.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id, runner in EXPERIMENTS.items():
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{experiment_id:4s} {doc}")
        return 0
    ids = list(EXPERIMENTS) if args.all else [e.upper() for e in args.experiments]
    if not ids:
        build_parser().print_help()
        return 2
    for experiment_id in ids:
        started = time.perf_counter()
        try:
            result = run_experiment(experiment_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        print(result.to_text())
        print(f"  [{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
