"""S1: massive multiplexing -- thousands of churning VCs on one adaptor.

The scenario the paper's connection-table sizing argues about::

    caller --> sw1 ==fwd port==> sw2 --> callee      (data + SETUP)
    caller <-- sw1 <==rev port== sw2 <-- callee      (CONNECT/RELEASE)

One host pair, a two-switch fabric, and a :class:`~repro.scale.session.
SessionEngine` driving Poisson call churn through the signalling plane
under admission control: thousands of concurrent sessions, each opening
a VC, pushing a couple of PDUs, and releasing.  Every subsystem the
scale plane added is on the hook at once:

- the callee's CAM is *smaller than the connection population*, so the
  LRU policy churns entries; each session's end-of-hold PDU probes an
  entry that may have been displaced (``cam.capacity_misses``);
- forwarding state is installed/removed per call through the declarative
  :class:`~repro.net.Testbed` routes, so released VCs' stragglers land
  in the switches' ``unroutable`` ledger bucket -- conservation must
  balance across the full churn history;
- per-VC observability books are bounded (top-K aggregation), checked
  by the registry-cardinality metric;
- the first seed re-runs under the fast path (cell bursts + calendar
  queue) and its observable dict must be byte-identical.

Gates are frozen in ``benchmarks/baselines/S1.json``: peak concurrency
at or above 2,048 sessions, a balanced ledger, parity, and bounded
metric cardinality.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Dict, Optional, Sequence

from repro.atm.signalling import SIGNALLING_VC, SignallingAgent
from repro.faults.audit import CellConservationAuditor
from repro.net import Testbed
from repro.nic.config import aurora_oc3
from repro.obs.metrics import MetricsRegistry, instrument
from repro.runner import ResultStore, RunLog, SweepSpec, run_sweep
from repro.scale.session import SessionEngine, SessionProfile
from repro.sim.core import SimConfig, Simulator
from repro.sim.random import RandomStreams
from repro.tm.cac import CallAdmissionController

#: The concurrency bar S1 must clear (the paper's "thousands of VCs").
S1_TARGET_CONCURRENT = 2048

_FWD = ("caller", "sw1", "sw2", "callee")
_REV = ("callee", "sw2", "sw1", "caller")


def _jain(values) -> float:
    """Jain's fairness index over *values* (1.0 = perfectly fair)."""
    values = [float(v) for v in values if v > 0]
    if not values:
        return 0.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    return square_of_sum / (len(values) * sum_of_squares)


def _churn_run(
    seed: int,
    duration: float,
    arrival_rate: float,
    holding_time: float,
    peak_rate_bps: float,
    pdus_per_session: int,
    sdu_size: int,
    cam_entries: int,
    reassembly_quota: int,
    fast_path: bool = False,
) -> Dict[str, float]:
    """One churn history; returns its scalar observables.

    The fast-path lane also swaps the scheduler to the calendar queue,
    so a single parity comparison covers both dual-path mechanisms.
    """
    sim = Simulator(
        SimConfig(
            fast_path=fast_path,
            scheduler="calendar" if fast_path else "heap",
        )
    )
    streams = RandomStreams(seed)
    cfg = replace(
        aurora_oc3(),
        cam_entries=cam_entries,
        cam_eviction="lru",
        reassembly_quota=reassembly_quota,
    )

    tb = Testbed(default_config=cfg)
    tb.add_host("caller").add_host("callee")
    tb.add_switch("sw1").add_switch("sw2")
    tb.link("caller", "sw1")
    tb.link("sw1", "sw2", port_name="p-fwd")
    tb.link("sw2", "callee", port_name="p-egress")
    tb.link("callee", "sw2")
    tb.link("sw2", "sw1", port_name="p-rev")
    tb.link("sw1", "caller", port_name="p-ret")
    # The control plane's well-known channel is routed statically, both
    # ways; data-VC routes come and go with the sessions.
    tb.route(SIGNALLING_VC, _FWD)
    tb.route(SIGNALLING_VC, _REV)
    net = tb.build(sim)
    caller, callee = net.hosts["caller"], net.hosts["callee"]

    # The fabric is bidirectional (CONNECT/RELEASE ride the reverse
    # path through the same switches), so the audit closes the whole
    # domain: both injection links, all four ports, both receivers.
    auditor = CellConservationAuditor(
        net.links["caller->sw1"],
        callee,
        switches=[net.switches["sw1"], net.switches["sw2"]],
        ports=[
            net.ports["p-fwd"],
            net.ports["p-egress"],
            net.ports["p-rev"],
            net.ports["p-ret"],
        ],
        extra_links=[
            net.links["sw1->sw2"],
            net.links["sw2->callee"],
            net.links["sw2->sw1"],
            net.links["sw1->caller"],
        ],
        extra_injections=[net.links["callee->sw2"]],
        extra_receivers=[caller],
    )

    # Data VCs ride unshaped: a single-engine pacer head-of-line blocks
    # at per-VC kilobit rates, which is a TX-scheduling story (T-series),
    # not the multiplexing-scale story S1 measures.  CAC still books the
    # 64 kb/s contract each SETUP carries.
    callee_sig = SignallingAgent(
        sim, callee, streams=streams, name="callee-sig", shape_data_vcs=False
    )
    caller_sig = SignallingAgent(
        sim, caller, streams=streams, name="caller-sig", shape_data_vcs=False
    )
    cac = CallAdmissionController(sim)
    cac.add_link(net.links["sw1->sw2"])
    cac.guard(callee_sig)

    # Per-call forwarding state: installed when the caller learns the
    # VC, torn down at release -- stragglers hit the unroutable bucket.
    caller_sig.on_call_active = lambda call: net.add_route(call.address, _FWD)
    caller_sig.on_call_released = lambda call: net.remove_route(
        call.address, _FWD
    )

    engine = SessionEngine(
        sim,
        caller_sig,
        streams,
        SessionProfile(
            arrival_rate=arrival_rate,
            holding_time=holding_time,
            peak_rate_bps=peak_rate_bps,
            pdus_per_session=pdus_per_session,
            sdu_size=sdu_size,
        ),
    )
    callee_sig.on_user_pdu = lambda completion: engine.record_delivery(
        completion.vc, completion.size
    )

    # The registry exists to prove the cardinality bound: at thousands
    # of VCs its length must stay O(top-K), not O(VCs).
    registry = MetricsRegistry(sim)
    instrument(registry, caller, prefix="caller.")
    instrument(registry, callee, prefix="callee.")
    instrument(registry, net.ports["p-egress"], prefix="egress.")
    instrument(registry, caller_sig, prefix="sig.")
    instrument(registry, cac, prefix="cac.")
    instrument(registry, engine, prefix="sessions.")
    instrument(registry, auditor)

    engine.start()
    callee.start()
    sim.run(until=duration)
    engine.stop()
    ledger = auditor.snapshot()

    delivered = engine.delivered_by_vc
    total_bytes = sum(delivered.values())
    cam = callee.cam
    assert cam is not None
    return {
        "placed": float(engine.sessions_placed.count),
        "connected": float(engine.sessions_connected.count),
        "refused": float(engine.sessions_refused.count),
        "failed": float(engine.sessions_failed.count),
        "released": float(engine.sessions_released.count),
        "peak_active": float(engine.peak_active),
        "setup_mean_us": engine.setup_latency.mean * 1e6,
        "setup_max_us": engine.setup_latency.maximum * 1e6,
        "cam_evictions": float(cam.evictions),
        "cam_capacity_misses": float(cam.capacity_misses),
        "cam_miss_ratio": cam.miss_ratio,
        "goodput_mbps": total_bytes * 8 / duration / 1e6,
        "fairness_jain": _jain(delivered.values()),
        "peak_queue_occupancy": float(sim.peak_queue_occupancy),
        "registry_metrics": float(len(registry)),
        "conserved": 1.0 if ledger.is_conserved else 0.0,
        "unaccounted_cells": float(ledger.unaccounted),
        "unroutable_cells": float(ledger.unroutable),
    }


def _s1_point(params: Dict[str, Any], streams: RandomStreams) -> Dict[str, float]:
    """S1 kernel: one seed's churn history (plus the parity lane).

    Everything derives from the explicit ``seed`` axis so the scalar
    and fast-path lanes replay the identical churn history; the sweep's
    per-point streams are unused.
    """
    del streams
    common = dict(
        duration=params["duration"],
        arrival_rate=params["arrival_rate"],
        holding_time=params["holding_time"],
        peak_rate_bps=params["peak_rate_bps"],
        pdus_per_session=params["pdus_per_session"],
        sdu_size=params["sdu_size"],
        cam_entries=params["cam_entries"],
        reassembly_quota=params["reassembly_quota"],
    )
    point = _churn_run(params["seed"], fast_path=False, **common)
    if params["parity_seed"] == params["seed"]:
        fast = _churn_run(params["seed"], fast_path=True, **common)
        # Every cell/session-level observable must match byte for byte.
        # The one exclusion is the scheduler's own footprint: the burst
        # lane queues fewer, larger entries by design, so its high-water
        # mark legitimately differs.
        slow_obs = {k: v for k, v in point.items() if k != "peak_queue_occupancy"}
        fast_obs = {k: v for k, v in fast.items() if k != "peak_queue_occupancy"}
        slow_json = json.dumps(slow_obs, sort_keys=True)
        fast_json = json.dumps(fast_obs, sort_keys=True)
        point["fast_path_parity"] = 1.0 if slow_json == fast_json else 0.0
    else:
        point["fast_path_parity"] = 1.0
    return point


def run_s1(
    config=None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    duration: float = 2.0,
    arrival_rate: float = 5000.0,
    holding_time: float = 0.5,
    peak_rate_bps: float = 64000.0,
    pdus_per_session: int = 2,
    sdu_size: int = 256,
    cam_entries: int = 1024,
    reassembly_quota: int = 512,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
):
    """S1: session churn at massive-multiplexing scale.

    Each seed drives a full Poisson churn history (thousands of
    signalled sessions through a two-switch fabric under CAC) and
    reports concurrency, setup latency, CAM pressure, fairness, and the
    conservation ledger.  The first seed additionally re-runs on the
    fast path (bursts + calendar queue) and must match byte for byte --
    so ``fast_path=True`` adds nothing here and is accepted only for
    the uniform experiment contract, like *config*.
    """
    del config, fast_path
    seeds = list(seeds) if seeds is not None else [1, 2]
    from repro.results.experiments import ExperimentResult

    spec = SweepSpec.grid(
        "S1",
        axes={"seed": seeds},
        fixed={
            "duration": duration,
            "arrival_rate": arrival_rate,
            "holding_time": holding_time,
            "peak_rate_bps": peak_rate_bps,
            "pdus_per_session": pdus_per_session,
            "sdu_size": sdu_size,
            "cam_entries": cam_entries,
            "reassembly_quota": reassembly_quota,
            "parity_seed": seeds[0],
        },
        x_axis="seed",
    )
    sweep_run = run_sweep(spec, _s1_point, workers=workers, store=store, log=log)
    series = sweep_run.series(
        name="session churn at scale", x_label="seed"
    )
    result = ExperimentResult(
        experiment_id="S1",
        title=(
            "Massive multiplexing: thousands of churning signalled "
            "sessions on one adaptor pair (aurora OC-3)"
        ),
        series=series,
    )
    peaks = series.column("peak_active")
    setup_means = series.column("setup_mean_us")
    result.metrics["min_peak_active"] = min(peaks)
    result.metrics["mean_peak_active"] = sum(peaks) / len(peaks)
    result.metrics["scale_target_met"] = (
        1.0 if min(peaks) >= S1_TARGET_CONCURRENT else 0.0
    )
    result.metrics["mean_setup_us"] = sum(setup_means) / len(setup_means)
    result.metrics["max_setup_us"] = max(series.column("setup_max_us"))
    result.metrics["mean_cam_miss_ratio"] = sum(
        series.column("cam_miss_ratio")
    ) / len(seeds)
    result.metrics["total_cam_evictions"] = sum(series.column("cam_evictions"))
    result.metrics["min_fairness_jain"] = min(series.column("fairness_jain"))
    result.metrics["max_peak_queue_occupancy"] = max(
        series.column("peak_queue_occupancy")
    )
    result.metrics["max_registry_metrics"] = max(
        series.column("registry_metrics")
    )
    result.metrics["all_conserved"] = min(series.column("conserved"))
    result.metrics["fast_path_parity"] = min(series.column("fast_path_parity"))
    result.metrics["total_refused"] = sum(series.column("refused"))
    result.metrics["total_failed"] = sum(series.column("failed"))
    result.notes.append(
        f"the engine must sustain >= {S1_TARGET_CONCURRENT} concurrent "
        "sessions (min_peak_active) with the CAM an order of magnitude "
        "smaller than the connection population; the ledger balances "
        "across the full churn history with released VCs' stragglers "
        "itemised as unroutable/unknown-VC"
    )
    return result
