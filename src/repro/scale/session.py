"""Session engine: thousands of signalled connections, churning.

The paper's massive-multiplexing argument is that one adaptor must
serve the connection *population* of a whole host -- far more virtual
circuits than any per-VC hardware table wants to hold, arriving and
departing continuously.  :class:`SessionEngine` generates that load:
a Poisson arrival process places calls through a
:class:`~repro.atm.signalling.SignallingAgent`, each accepted session
holds its VC for an exponential holding time, pushes a small workload
through it, and releases -- so the open-connection set is a churning
crowd, not a static table.

All randomness is drawn from named :class:`~repro.sim.random.
RandomStreams` (``scale.arrival``, ``scale.hold``), so a seed fully
determines the churn history and fast-path runs replay it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.atm.addressing import VcAddress
from repro.atm.signalling import (
    Call,
    CallRefused,
    CallState,
    CallTimeout,
    SignallingAgent,
)
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, WelfordStat
from repro.sim.random import RandomStreams


@dataclass(frozen=True)
class SessionProfile:
    """The statistical shape of the offered session load."""

    #: Poisson arrival rate, sessions per second.
    arrival_rate: float
    #: Mean exponential holding time, seconds.
    holding_time: float
    #: Traffic contract each SETUP carries (what CAC books against).
    peak_rate_bps: Optional[float] = None
    #: PDUs each session pushes through its VC: one right after
    #: CONNECT, and -- when ``pdus_per_session`` is 2 -- one more at the
    #: end of the holding time, which lands *after* an idle gap and so
    #: probes whether the receive CAM still remembers the VC.
    pdus_per_session: int = 1
    sdu_size: int = 256
    #: Gap between a session's PDUs (0 sends back to back).
    send_gap: float = 0.0
    #: Stop placing new sessions after this many (None: no cap).
    max_sessions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.holding_time <= 0:
            raise ValueError("holding_time must be positive")
        if self.pdus_per_session < 0:
            raise ValueError("pdus_per_session must be >= 0")
        if self.sdu_size < 1:
            raise ValueError("sdu_size must be >= 1")


class SessionEngine:
    """Drives call churn through a signalling agent.

    The engine owns the caller side only: arrivals, per-session
    workload, holding-time expiry, release.  Admission lives where it
    belongs (a :class:`~repro.tm.cac.CallAdmissionController` guarding
    the *callee* agent); route installation is the experiment's business
    via the agent's ``on_call_active`` / ``on_call_released`` hooks,
    which the engine deliberately leaves untouched.

    Delivered bytes are credited per VC through
    :meth:`record_delivery`, which the experiment wires to the callee's
    PDU-completion hook; the per-VC book feeds the fairness metric and
    the top-K metric aggregation (``repro.obs.instrument``).
    """

    def __init__(
        self,
        sim: Simulator,
        agent: SignallingAgent,
        streams: RandomStreams,
        profile: SessionProfile,
        name: str = "sessions",
    ) -> None:
        self.sim = sim
        self.agent = agent
        self.streams = streams
        self.profile = profile
        self.name = name
        self.sessions_placed = Counter(f"{name}.placed")
        self.sessions_connected = Counter(f"{name}.connected")
        self.sessions_refused = Counter(f"{name}.refused")
        self.sessions_released = Counter(f"{name}.released")
        self.sessions_failed = Counter(f"{name}.failed")
        self.active_sessions = 0
        self.peak_active = 0
        #: SETUP-to-CONNECT latency of every accepted session.
        self.setup_latency = WelfordStat()
        #: Bytes delivered at the far end, by VC (fed from outside via
        #: :meth:`record_delivery`).
        self.delivered_by_vc: Dict[VcAddress, int] = {}
        #: Called with (call, address) when a session connects /
        #: finishes; for experiment bookkeeping beyond the agent hooks.
        self.on_session_active: Optional[Callable[[Call, VcAddress], None]] = None
        self.on_session_done: Optional[Callable[[Call], None]] = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin the Poisson arrival process."""
        self.sim.process(self._arrivals())

    def stop(self) -> None:
        """Place no further sessions (running ones finish normally)."""
        self._stopped = True

    def record_delivery(self, address: VcAddress, nbytes: int) -> None:
        """Credit *nbytes* of goodput to *address* (callee-side hook)."""
        self.delivered_by_vc[address] = (
            self.delivered_by_vc.get(address, 0) + nbytes
        )

    # -- processes ---------------------------------------------------------

    def _arrivals(self):
        profile = self.profile
        while not self._stopped:
            if (
                profile.max_sessions is not None
                and self.sessions_placed.count >= profile.max_sessions
            ):
                return
            yield self.sim.timeout(
                self.streams.exponential(
                    "scale.arrival", 1.0 / profile.arrival_rate
                )
            )
            if self._stopped:
                return
            self.sessions_placed.increment()
            placed_at = self.sim.now
            call = self.agent.place_call(
                peak_rate_bps=profile.peak_rate_bps
            )
            self.sim.process(self._session(call, placed_at))

    def _session(self, call: Call, placed_at: float):
        profile = self.profile
        try:
            address = yield call.connected
        except CallTimeout:
            self.sessions_failed.increment()
            return
        except CallRefused:
            self.sessions_refused.increment()
            return
        connected_at = self.sim.now
        self.setup_latency.add(connected_at - placed_at)
        self.sessions_connected.increment()
        self.active_sessions += 1
        if self.active_sessions > self.peak_active:
            self.peak_active = self.active_sessions
        if self.on_session_active is not None:
            self.on_session_active(call, address)

        hold = self.streams.exponential("scale.hold", profile.holding_time)
        payload = bytes(profile.sdu_size)
        nic = self.agent.interface
        # First PDU(s) right after CONNECT, while the receive CAM is
        # guaranteed warm; the last PDU (when there are >= 2) waits out
        # the holding time and probes a potentially evicted entry.
        pdus = profile.pdus_per_session
        early = pdus - 1 if pdus >= 2 else pdus
        sent = 0
        for _ in range(early):
            if call.state is not CallState.ACTIVE:
                break
            yield nic.send(address, payload)
            sent += 1
            if profile.send_gap > 0:
                yield self.sim.timeout(profile.send_gap)
        remaining = (connected_at + hold) - self.sim.now
        if remaining > 0:
            yield self.sim.timeout(remaining)
        if sent < pdus and call.state is CallState.ACTIVE:
            yield nic.send(address, payload)
        if call.state is CallState.ACTIVE:
            self.agent.release_call(call)
            yield call.released
        self.active_sessions -= 1
        self.sessions_released.increment()
        if self.on_session_done is not None:
            self.on_session_done(call)
