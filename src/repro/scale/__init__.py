"""Massive-multiplexing scale plane: session churn at thousands of VCs.

:class:`~repro.scale.session.SessionEngine` drives Poisson call churn
through the signalling plane; :func:`~repro.scale.experiment.run_s1` is
the S1 experiment that gates the whole scale story (concurrency, CAM
pressure, bounded metric cardinality, ledger conservation, fast-path
parity).  See ``docs/SCALE.md``.
"""

from repro.scale.experiment import S1_TARGET_CONCURRENT, run_s1
from repro.scale.session import SessionEngine, SessionProfile

__all__ = [
    "S1_TARGET_CONCURRENT",
    "SessionEngine",
    "SessionProfile",
    "run_s1",
]
