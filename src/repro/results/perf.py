"""P1: the fast-path speedup benchmark, with its equivalence proof.

The fast path (``SimConfig(fast_path=True)``: burst-mode cell movement
plus span-collapsed bus/DMA walks, see ``docs/PERFORMANCE.md``) exists
only to make the simulator faster -- it must change *nothing* the
experiments report.  P1 measures both halves of that contract on
F3/F6-class receive workloads:

- **speedup** -- wall-clock time of the scalar reference path over the
  fast path for the same experiment call (best-of-*repeats* per
  variant, so scheduler noise shortens neither side unfairly);
- **equivalence** -- the two paths' :class:`ExperimentResult` payloads
  (series, metrics, notes) must be byte-identical under canonical JSON,
  and a drained single-size receive run must produce byte-identical
  :class:`~repro.obs.MetricsRegistry` documents;
- **events_ratio** -- scheduler events the scalar run needed per fast
  event on the drained run: the mechanism behind the speedup, and a
  stable (deterministic) proxy for it that the regression gate can
  pin tightly while wall-clock only gates a floor.

Wall-clock measurement is inherently about the host running the
benchmark, so P1 is the one experiment allowed to read
``time.perf_counter`` (simlint's SL103 sanctions it: only simulated
*results* must be wall-clock free, and P1's equivalence check proves
they are).
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.aal.aal5 import Aal5Segmenter
from repro.atm.addressing import VcAddress
from repro.atm.burst import CellBurst
from repro.nic.config import aurora_oc3
from repro.nic.nic import HostNetworkInterface
from repro.obs.metrics import MetricsRegistry, instrument
from repro.sim.core import SimConfig, Simulator
from repro.workloads.generators import make_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see run_p1)
    from repro.results.experiments import ExperimentResult


def canonical_result_json(result: "ExperimentResult") -> str:
    """An ExperimentResult as canonical JSON, for byte comparison.

    ``repr``-faithful float serialisation (json round-trips Python
    floats exactly), sorted keys, no whitespace ambiguity: two results
    compare equal iff every reported number, label and note is
    bit-identical.
    """
    payload: Dict[str, Any] = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": result.headers,
        "rows": result.rows,
        "series": None,
        "metrics": result.metrics,
        "notes": result.notes,
    }
    if result.series is not None:
        payload["series"] = {
            "name": result.series.name,
            "x_label": result.series.x_label,
            "x": result.series.x,
            "columns": result.series.columns,
        }
    return json.dumps(payload, sort_keys=True)


def drained_rx_run(
    fast_path: bool, sdu_size: int = 1500, n_pdus: int = 60
) -> Tuple[str, int, int]:
    """One finite, fully-drained receive run; returns its evidence.

    Feeds exactly *n_pdus* PDUs of *sdu_size* bytes through the F3
    wire model (slot-spaced arrivals, upstream backpressure), runs to a
    fixed horizon comfortably past the drain point, and returns
    ``(registry_json, events_processed, pdus_delivered)``.  Because the
    run is drained and the horizon is path-independent, the metrics
    document must be byte-identical between the scalar and fast paths
    (a mid-flight cutoff would not be: the fast engine counts a popped
    burst's cells at pop time).
    """
    from repro.results.experiments import lab_host

    config = lab_host(aurora_oc3())
    sim = Simulator(SimConfig(fast_path=fast_path))
    nic = HostNetworkInterface(sim, config, name="rxhost")
    registry = MetricsRegistry(sim)
    instrument(registry, nic)
    received: List[Any] = []
    nic.on_pdu = received.append
    vc = nic.open_vc(address=VcAddress(0, 100))
    nic.start()
    segmenter = Aal5Segmenter(vc.address)
    payload = make_payload(sdu_size)
    cells: List[Any] = []
    for _ in range(n_pdus):
        cells.extend(segmenter.segment(payload))
    slot = config.link.cell_time

    def feeder():
        for cell in cells:
            yield sim.timeout(slot)
            yield nic.rx_fifo.put(cell)

    def feeder_fast():
        # Same iterated-add arrival chain as run_f3's burst feeder, over
        # a finite cell list (see docs/PERFORMANCE.md on why the chain
        # must be built with repeated adds, never ``base + i * slot``).
        burst_len = max(
            1, min(sim.config.burst_cells, nic.rx_fifo.depth_cells // 2)
        )
        last = 0.0
        index = 0
        while index < len(cells):
            chunk = cells[index:index + burst_len]
            index += len(chunk)
            arrivals = []
            for _ in chunk:
                last = last + slot
                arrivals.append(last)
            accept = nic.rx_fifo.put_burst(CellBurst(chunk, arrivals))
            blocked = not accept.triggered
            yield accept
            if blocked:
                last = max(sim.now, last)
            wait = last - sim.now
            if wait > 0:
                yield sim.timeout(wait)

    sim.process(feeder_fast() if fast_path else feeder())
    # Feeding takes len(cells) slots at line rate; 3x covers any
    # engine-bound stretch, so both paths idle long before the horizon.
    sim.run(until=3.0 * len(cells) * slot)
    return registry.to_json(), sim.events_processed, len(received)


def _best_seconds(fn: Any, repeats: int) -> Tuple[float, Any]:
    """Minimum wall-clock over *repeats* calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_p1(
    config=None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    f3_sizes: Sequence[int] = (9180,),
    f3_window: float = 0.03,
    f6_vc_counts: Sequence[int] = (4, 16),
    f6_sdu_size: int = 9180,
    f6_window: float = 0.01,
    min_speedup: float = 2.5,
    repeats: int = 3,
) -> "ExperimentResult":
    """P1: fast-path wall-clock speedup on F3/F6-class workloads.

    Runs F3 (single-VC receive throughput) and F6 (interleaved-VC
    receive, CAM vs software lookup) once per path, asserts result
    equivalence, and reports the speedups.  ``speedup_ok`` is 1.0 when
    the *slower* of the two clears *min_speedup*; ``equivalence_ok`` is
    1.0 when every comparison was byte-identical.  The regression gate
    (``benchmarks/baselines/P1.json``) pins both verdicts and the
    deterministic ``events_ratio``, leaving the raw wall-clock numbers
    ungated (they describe the machine, not the model).

    P1 runs both lanes by construction, so *config*, *seeds* and
    *fast_path* are accepted only for the uniform contract.
    """
    del config, seeds, fast_path
    # Imported here, not at module top: experiments.py imports this
    # module to build the registry, exactly like run_r2.
    from repro.results.experiments import ExperimentResult, run_f3, run_f6

    series_x: List[float] = []
    scalar_col: List[float] = []
    fast_col: List[float] = []
    speedup_col: List[float] = []
    labels: List[str] = []
    equivalent = True

    workloads = (
        (
            "F3",
            lambda fast: run_f3(
                sizes=f3_sizes, window=f3_window, fast_path=fast
            ),
        ),
        (
            "F6",
            lambda fast: run_f6(
                vc_counts=f6_vc_counts,
                sdu_size=f6_sdu_size,
                window=f6_window,
                fast_path=fast,
            ),
        ),
    )
    speedups: Dict[str, float] = {}
    for index, (label, runner) in enumerate(workloads):
        scalar_s, scalar_result = _best_seconds(
            lambda: runner(False), repeats
        )
        fast_s, fast_result = _best_seconds(lambda: runner(True), repeats)
        scalar_json = canonical_result_json(scalar_result)
        fast_json = canonical_result_json(fast_result)
        if scalar_json != fast_json:
            equivalent = False
        speedup = scalar_s / fast_s if fast_s > 0 else float("inf")
        speedups[label] = speedup
        labels.append(label)
        series_x.append(float(index))
        scalar_col.append(scalar_s)
        fast_col.append(fast_s)
        speedup_col.append(speedup)

    registry_scalar, events_scalar, pdus_scalar = drained_rx_run(False)
    registry_fast, events_fast, pdus_fast = drained_rx_run(True)
    if registry_scalar != registry_fast or pdus_scalar != pdus_fast:
        equivalent = False
    events_ratio = (
        events_scalar / events_fast if events_fast else float("inf")
    )

    from repro.analysis.sweep import Series

    series = Series(name="fast-path speedup", x_label="workload_index")
    for i in range(len(series_x)):
        series.add_point(
            series_x[i],
            scalar_seconds=scalar_col[i],
            fast_seconds=fast_col[i],
            speedup=speedup_col[i],
        )
    result = ExperimentResult(
        experiment_id="P1",
        title="Fast-path wall-clock speedup (scalar reference vs bursts)",
        series=series,
    )
    worst = min(speedup_col) if speedup_col else 0.0
    result.metrics["speedup_f3"] = speedups.get("F3", 0.0)
    result.metrics["speedup_f6"] = speedups.get("F6", 0.0)
    result.metrics["speedup_min"] = worst
    result.metrics["speedup_ok"] = 1.0 if worst >= min_speedup else 0.0
    result.metrics["equivalence_ok"] = 1.0 if equivalent else 0.0
    result.metrics["events_ratio"] = events_ratio
    result.notes.append(
        "workload 0 = F3 (sizes "
        + ",".join(str(s) for s in f3_sizes)
        + f"), workload 1 = F6 (VCs "
        + ",".join(str(v) for v in f6_vc_counts)
        + f", sdu {f6_sdu_size})"
    )
    result.notes.append(
        f"equivalence: ExperimentResults byte-identical per workload, "
        f"drained-run metrics registry byte-identical "
        f"({pdus_fast} PDUs); events_ratio = scalar scheduler events "
        f"per fast event on the drained run"
    )
    result.notes.append(
        f"gate: slowest workload must clear {min_speedup:.1f}x "
        f"(wall-clock; raw seconds are machine-dependent and ungated)"
    )
    return result
