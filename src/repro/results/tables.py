"""Plain-text rendering of experiment tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.analysis.sweep import Series


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [
        [_format_cell(v) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row of {len(row)} cells under {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Series, title: str = "") -> str:
    """Render a figure's data as a table (one row per x value)."""
    return format_table(
        series.headers(), series.rows(), title=title or series.name
    )


def _csv_field(value) -> str:
    # Numbers stay machine-readable: no thousands separators here.
    if isinstance(value, float):
        text = f"{value:g}"
    elif isinstance(value, str):
        text = value
    else:
        text = str(value)
    if any(ch in text for ch in ",\"\n"):
        return '"' + text.replace('"', '""') + '"'
    return text


def format_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render the same table data as RFC-4180-style CSV text."""
    lines = [",".join(_csv_field(h) for h in headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row of {len(row)} cells under {len(headers)} headers"
            )
        lines.append(",".join(_csv_field(v) for v in row))
    return "\n".join(lines) + "\n"
