"""Runners that regenerate every table and figure of the evaluation.

Each ``run_*`` function returns an :class:`ExperimentResult` holding the
tables/series plus provenance notes.  Parameters default to the full
paper-scale configuration; the benchmark suite passes smaller windows so
the whole matrix stays fast under pytest-benchmark.

The sweep-shaped experiments (F6, F7, T5, R1) are expressed as
:class:`~repro.runner.SweepSpec` grids over module-level *kernels*
(``_f7_point`` and friends) executed by :func:`repro.runner.run_sweep`:
``workers=N`` shards the points over a process pool with results
bit-identical to a serial run, and passing a
:class:`~repro.runner.ResultStore` lets warm re-runs skip unchanged
points entirely.  Kernels must stay module-level (picklable) and pure
in their ``(params, streams)`` arguments -- see docs/RUNNER.md.

Experiment ids follow DESIGN.md §3 (T = table, F = figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.aal.aal5 import Aal5Segmenter, cells_for_sdu
from repro.atm.addressing import VcAddress
from repro.atm.burst import CellBurst
from repro.analysis.latency import latency_model
from repro.analysis.sweep import Series
from repro.analysis.throughput import (
    end_to_end_throughput_model_mbps,
    rx_saturation_mbps,
    rx_throughput_model_mbps,
    saturating_pdu_size,
    tx_saturation_mbps,
    tx_throughput_model_mbps,
)
from repro.host.interrupts import InterruptSpec
from repro.host.os_model import OsCostModel
from repro.analysis.utilization import (
    host_cycles_per_pdu_hostsar,
    host_cycles_per_pdu_offloaded,
    offload_advantage,
)
from repro.atm.link import STS3C_155, STS12C_622, PhysicalLink
from repro.baselines.hardwired import hardwired_config
from repro.baselines.host_sar import HostSarConfig, HostSarInterface
from repro.baselines.shared_proc import share_engine
from repro.nic.config import NicConfig, aurora_oc3, aurora_oc12
from repro.nic.costs import CellPosition
from repro.nic.nic import HostNetworkInterface, connect
from repro.results.tables import format_series, format_table
from repro.runner import ResultStore, RunLog, SweepSpec, run_sweep
from repro.sim.core import SimConfig, Simulator
from repro.sim.random import RandomStreams
from repro.workloads.generators import (
    GreedySource,
    OnOffSource,
    PoissonSource,
    make_payload,
)
from repro.workloads.scenarios import InterleavedCellSource, build_point_to_point

#: The PDU sizes every size sweep uses (bytes).
DEFAULT_SIZES: Sequence[int] = (40, 64, 128, 256, 512, 1024, 2048, 4096, 9180, 16384, 32768, 65535)


@dataclass
class ExperimentResult:
    """One regenerated table or figure, ready to print or assert on."""

    experiment_id: str
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List] = field(default_factory=list)
    series: Optional[Series] = None
    notes: List[str] = field(default_factory=list)
    #: Scalars experiments expose for tests (knees, ratios, verdicts).
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        parts = []
        if self.series is not None:
            parts.append(format_series(self.series, title=f"{self.experiment_id}: {self.title}"))
        if self.rows:
            parts.append(
                format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
            )
        for note in self.notes:
            parts.append(f"  note: {note}")
        if self.metrics:
            metric_text = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(self.metrics.items())
            )
            parts.append(f"  metrics: {metric_text}")
        return "\n".join(parts)


def lab_host(config: NicConfig) -> NicConfig:
    """A configuration with free host software, isolating the adaptor.

    Zeroing OS and interrupt costs removes the host pipeline stages so
    measurements characterise the interface itself -- the quantity the
    paper's engine analysis predicts.
    """
    return replace(
        config,
        os_costs=OsCostModel(
            syscall_cycles=0,
            copy_cycles_per_byte=0.0,
            buffer_mgmt_cycles=0,
            wakeup_cycles=0,
            driver_tx_cycles=0,
            driver_rx_cycles=0,
        ),
        interrupt=InterruptSpec(entry_cycles=0, exit_cycles=0),
    )


def steady_goodput_mbps(received: Sequence) -> float:
    """Goodput between the first and last delivery (ramp-up excluded)."""
    if len(received) < 3:
        return 0.0
    span = received[-1].delivered_at - received[0].delivered_at
    nbytes = sum(c.size for c in received[1:])
    return (nbytes * 8 / span) / 1e6 if span > 0 else 0.0


def windowed_goodput_mbps(received: Sequence, t_start: float, t_end: float) -> float:
    """Goodput over [t_start, t_end) by delivery time (warmup excluded).

    Robust when completions arrive in bursts (many VCs finishing PDUs
    together), where first-to-last-delivery spans mismeasure.
    """
    if t_end <= t_start:
        return 0.0
    nbytes = sum(
        c.size for c in received if t_start <= c.delivered_at < t_end
    )
    return (nbytes * 8 / (t_end - t_start)) / 1e6


def _window_for(size: int, base: float, link) -> float:
    """A measurement window long enough for ~40 PDUs of *size* bytes."""
    pdu_time = cells_for_sdu(size) * link.cell_time
    return max(base, 40 * pdu_time)


# ---------------------------------------------------------------------------
# T1 / T2: the engine cycle-budget tables
# ---------------------------------------------------------------------------

def run_t1(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
) -> ExperimentResult:
    """T1: transmit-path per-operation cycle budget.

    Closed-form table: *seeds* and *fast_path* are accepted only for
    the uniform experiment contract (see EXPERIMENTS.md).
    """
    del seeds, fast_path
    config = config if config is not None else aurora_oc3()
    costs = config.tx_costs
    engine = config.tx_engine
    rows = [
        [name, cycles, engine.seconds_for(cycles) * 1e6]
        for name, cycles in costs.breakdown().items()
    ]
    result = ExperimentResult(
        experiment_id="T1",
        title=f"TX segmentation budget on {engine.name}",
        headers=["operation", "cycles", "time (us)"],
        rows=rows,
    )
    for position in CellPosition:
        cycles = costs.cell_cycles(position)
        result.metrics[f"cell_{position.value}_us"] = (
            engine.seconds_for(cycles) * 1e6
        )
    result.metrics["pdu_overhead_us"] = engine.seconds_for(costs.pdu_cycles()) * 1e6
    result.metrics["cell_slot_us"] = config.link.cell_time * 1e6
    result.notes.append(
        f"link {config.link.name}: cell slot {config.link.cell_time * 1e6:.2f} us; "
        f"middle-cell service {result.metrics['cell_middle_us']:.2f} us"
    )
    return result


def run_t2(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
) -> ExperimentResult:
    """T2: receive-path per-operation cycle budget (CAM and software).

    Closed-form table: *seeds* and *fast_path* are accepted only for
    the uniform experiment contract.
    """
    del seeds, fast_path
    config = config if config is not None else aurora_oc3()
    costs = config.rx_costs
    engine = config.rx_engine
    rows = [
        [name, cycles, engine.seconds_for(cycles) * 1e6]
        for name, cycles in costs.breakdown().items()
    ]
    result = ExperimentResult(
        experiment_id="T2",
        title=f"RX reassembly budget on {engine.name}",
        headers=["operation", "cycles", "time (us)"],
        rows=rows,
    )
    for position in CellPosition:
        for fitted, label in ((True, "cam"), (False, "sw")):
            cycles = costs.cell_cycles(position, fitted)
            result.metrics[f"cell_{position.value}_{label}_us"] = (
                engine.seconds_for(cycles) * 1e6
            )
    result.metrics["cell_slot_us"] = config.link.cell_time * 1e6
    result.notes.append(
        "receive exceeds transmit per cell: classification plus "
        "reassembly-state work has no transmit analogue"
    )
    return result


# ---------------------------------------------------------------------------
# F2 / F3: throughput vs PDU size
# ---------------------------------------------------------------------------

def run_f2(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sizes: Sequence[int] = DEFAULT_SIZES,
    window: float = 0.05,
) -> ExperimentResult:
    """F2: transmit throughput vs PDU size (simulated + analytic).

    Deterministic: *seeds* is accepted only for the uniform contract.
    """
    del seeds
    config = config if config is not None else aurora_oc3()
    isolated = lab_host(config)
    sim_config = SimConfig(fast_path=fast_path)
    series = Series(name="tx throughput", x_label="sdu_bytes")
    for size in sizes:
        run_window = _window_for(size, window, config.link)

        # Interface capability: free host software.
        sim = Simulator(sim_config)
        scenario = build_point_to_point(sim, isolated)
        GreedySource(sim, scenario.sender, scenario.vc, size).start()
        sim.run(until=run_window)
        interface_mbps = steady_goodput_mbps(scenario.received)

        # End to end: real host software in the pipeline.
        sim2 = Simulator(sim_config)
        scenario2 = build_point_to_point(sim2, config)
        GreedySource(sim2, scenario2.sender, scenario2.vc, size).start()
        sim2.run(until=run_window)

        series.add_point(
            size,
            interface_sim_mbps=interface_mbps,
            interface_model_mbps=min(
                tx_throughput_model_mbps(config, size),
                rx_throughput_model_mbps(config, size),
            ),
            end_to_end_sim_mbps=steady_goodput_mbps(scenario2.received),
            end_to_end_model_mbps=end_to_end_throughput_model_mbps(config, size),
        )
    result = ExperimentResult(
        experiment_id="F2",
        title=f"TX throughput vs PDU size ({config.link.name})",
        series=series,
    )
    knee = saturating_pdu_size(config, "tx")
    result.metrics["tx_knee_bytes"] = knee
    result.metrics["tx_saturation_mbps"] = tx_saturation_mbps(config)
    result.metrics["link_user_mbps"] = config.link.effective_user_rate_bps / 1e6
    result.notes.append(
        f"engine-limited below ~{knee} bytes, link-limited above"
        if knee > 0
        else "engine never reaches link rate at this clock"
    )
    return result


def run_f3(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sizes: Sequence[int] = DEFAULT_SIZES,
    window: float = 0.05,
) -> ExperimentResult:
    """F3: receive throughput vs PDU size.

    The receive path is isolated from transmit limits by feeding the
    receive FIFO directly from a backlogged wire model: cells arrive at
    link rate but never overrun (upstream buffering), so the measured
    goodput is min(link, receive engine) -- the paper's sustainable-rate
    quantity.  Deterministic: *seeds* is accepted only for the uniform
    contract.
    """
    del seeds
    config = lab_host(config if config is not None else aurora_oc3())
    series = Series(name="rx throughput", x_label="sdu_bytes")
    for size in sizes:
        run_window = _window_for(size, window, config.link)
        sim = Simulator(SimConfig(fast_path=fast_path))
        nic = HostNetworkInterface(sim, config, name="rxhost")
        received = []
        nic.on_pdu = received.append
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        segmenter = Aal5Segmenter(vc.address)
        payload = make_payload(size)

        def feeder():
            while True:
                for cell in segmenter.segment(payload):
                    yield sim.timeout(config.link.cell_time)
                    yield nic.rx_fifo.put(cell)

        def feeder_fast():
            # Burst-mode wire: same slot-spaced arrival chain as the
            # scalar feeder (cell *i* at ``(i+1) * cell_time``, shifted
            # only while backpressured), pre-announced in batches.  The
            # chain is built with the same iterated float adds as the
            # scalar clock so the arrival values are bit-identical.
            slot = config.link.cell_time
            burst_len = max(
                1, min(sim.config.burst_cells, nic.rx_fifo.depth_cells // 2)
            )
            pending: List = []
            last = 0.0
            while True:
                while len(pending) < burst_len:
                    pending.extend(segmenter.segment(payload))
                cells = pending[:burst_len]
                del pending[:burst_len]
                arrivals = []
                for _ in range(burst_len):
                    last = last + slot
                    arrivals.append(last)
                accept = nic.rx_fifo.put_burst(CellBurst(cells, arrivals))
                blocked = not accept.triggered
                yield accept
                if blocked:
                    # Backpressured: the scalar chain restarts from the
                    # unblock time (arrivals are engine-dominated here).
                    last = max(sim.now, last)
                wait = last - sim.now
                if wait > 0:
                    yield sim.timeout(wait)

        sim.process(feeder_fast() if fast_path else feeder())
        sim.run(until=run_window)
        series.add_point(
            size,
            simulated_mbps=steady_goodput_mbps(received),
            model_mbps=rx_throughput_model_mbps(config, size),
        )
    result = ExperimentResult(
        experiment_id="F3",
        title=f"RX throughput vs PDU size ({config.link.name})",
        series=series,
    )
    knee = saturating_pdu_size(config, "rx")
    result.metrics["rx_knee_bytes"] = knee
    result.metrics["rx_saturation_mbps"] = rx_saturation_mbps(config)
    result.notes.append(
        "receive has the larger per-cell budget (it, not transmit, is "
        "engine-bound at STS-12c), but transmit's serial staging DMA "
        "gives TX the larger per-PDU overhead and the rightmost knee"
    )
    return result


# ---------------------------------------------------------------------------
# F4: latency decomposition
# ---------------------------------------------------------------------------

def run_f4(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sizes: Sequence[int] = (64, 1024, 9180, 65535),
    propagation_delay: float = 0.0,
) -> ExperimentResult:
    """F4: unloaded end-to-end latency, modelled stages vs simulation.

    *seeds* and *fast_path* are accepted only for the uniform contract.
    """
    del seeds, fast_path
    config = config if config is not None else aurora_oc3()
    headers = ["sdu_bytes"]
    rows: List[List] = []
    first = True
    measured_by_size: Dict[int, float] = {}
    for size in sizes:
        sim = Simulator()
        scenario = build_point_to_point(
            sim, config, propagation_delay=propagation_delay
        )
        # Time the full user-to-user path: from the send call on the
        # sending host to the receive callback on the receiving host.
        delivery_times: List[float] = []
        scenario.receiver.on_pdu = lambda _c: delivery_times.append(sim.now)
        post_time = sim.now
        scenario.sender.post(scenario.vc, make_payload(size))
        sim.run(until=1.0)
        measured_by_size[size] = (
            delivery_times[0] - post_time if delivery_times else float("nan")
        )

        breakdown = latency_model(config, size, propagation_delay)
        stages = breakdown.as_dict()
        if first:
            headers += [f"{k} (us)" for k in stages] + [
                "model total (us)",
                "simulated (us)",
            ]
            first = False
        rows.append(
            [size]
            + [v * 1e6 for v in stages.values()]
            + [breakdown.total * 1e6, measured_by_size[size] * 1e6]
        )
    result = ExperimentResult(
        experiment_id="F4",
        title=f"Latency decomposition ({config.link.name})",
        headers=headers,
        rows=rows,
    )
    smallest, largest = min(sizes), max(sizes)
    small_model = latency_model(config, smallest, propagation_delay)
    result.metrics["small_pdu_dominant"] = float(
        small_model.dominant_stage() != "link_serialization"
    )
    result.metrics[f"simulated_us_{smallest}"] = measured_by_size[smallest] * 1e6
    result.metrics[f"simulated_us_{largest}"] = measured_by_size[largest] * 1e6
    result.notes.append(
        f"short-PDU latency dominated by '{small_model.dominant_stage()}', "
        "not the wire"
    )
    return result


# ---------------------------------------------------------------------------
# T3: host CPU cost, offloaded vs host-based SAR
# ---------------------------------------------------------------------------

def run_t3(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sizes: Sequence[int] = (64, 576, 1500, 9180, 65535),
    pdus: int = 30,
) -> ExperimentResult:
    """T3: host cycles per received PDU -- the offload dividend.

    *seeds* and *fast_path* are accepted only for the uniform contract.
    """
    del seeds, fast_path
    nic_config = config if config is not None else aurora_oc3()
    # Deep adaptor cell buffer: within a single large PDU, cells arrive
    # faster than a per-cell-interrupt host absorbs them, so clean cost
    # accounting needs the dumb adaptor's one luxury -- onboard RAM.
    sar_config = HostSarConfig(rx_fifo_cells=4096)
    headers = [
        "sdu_bytes",
        "offloaded model (cyc)",
        "offloaded sim (cyc)",
        "host-SAR model (cyc)",
        "host-SAR sim (cyc)",
        "advantage (x)",
    ]
    rows: List[List] = []
    advantages = []
    for size in sizes:
        # Offloaded: measured host cycles per PDU end to end.
        sim = Simulator()
        scenario = build_point_to_point(sim, nic_config)
        GreedySource(
            sim, scenario.sender, scenario.vc, size, total_pdus=pdus
        ).start()
        sim.run(until=2.0)
        offl_sim = (
            scenario.receiver.cpu.total_cycles / len(scenario.received)
            if scenario.received
            else float("nan")
        )

        # Host-SAR: same PDUs through the software baseline, paced to
        # 60% of its analytic receive capacity (a greedy source drives
        # the per-cell-interrupt receiver into collapse -- that failure
        # is T5's story; here we want clean cost accounting).
        sar_model = host_cycles_per_pdu_hostsar(sar_config, size, "rx")
        sustainable = sar_config.host_cpu.clock_hz / sar_model
        sim2 = Simulator()
        tx = HostSarInterface(sim2, sar_config, name="sar-tx")
        rx = HostSarInterface(sim2, sar_config, name="sar-rx")
        link = PhysicalLink(sim2, sar_config.link, sink=rx.rx_input)
        tx.attach_tx_link(link)
        vc = tx.open_vc()
        rx.open_vc(address=vc.address)
        tx.start()
        PoissonSource(
            sim2, tx, vc.address, size, pdus_per_second=0.6 * sustainable
        ).start()
        sim2.run(until=pdus / (0.6 * sustainable))
        sar_sim = (
            rx.cpu.total_cycles / rx.pdus_received.count
            if rx.pdus_received.count
            else float("nan")
        )

        offl_model = host_cycles_per_pdu_offloaded(nic_config, size, "rx")
        sar_model = host_cycles_per_pdu_hostsar(sar_config, size, "rx")
        advantage = offload_advantage(nic_config, sar_config, size, "rx")
        advantages.append(advantage)
        rows.append([size, offl_model, offl_sim, sar_model, sar_sim, advantage])
    result = ExperimentResult(
        experiment_id="T3",
        title="Host CPU cycles per received PDU: offloaded vs host SAR",
        headers=headers,
        rows=rows,
    )
    result.metrics["max_advantage"] = max(advantages)
    result.metrics["min_advantage"] = min(advantages)
    result.notes.append(
        "host-SAR cost grows with the PDU's cell count; offloaded cost "
        "is per-PDU (plus copies)"
    )
    return result


# ---------------------------------------------------------------------------
# F5: FIFO occupancy and loss under burstiness
# ---------------------------------------------------------------------------

def run_f5(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    fifo_depths: Sequence[int] = (8, 16, 32, 64, 128, 256),
    burst_pdus: float = 8.0,
    sdu_size: int = 9180,
    window: float = 0.04,
) -> ExperimentResult:
    """F5: receive-FIFO sizing when the engine is slower than the link.

    At STS-12c the default 25 MHz receive engine's per-cell time exceeds
    the cell slot, so FIFO occupancy climbs during bursts; the FIFO
    depth determines whether the inter-burst idle rescues it or cells
    spill.  *seeds* and *fast_path* are accepted only for the uniform
    contract.
    """
    del seeds, fast_path
    config = config if config is not None else aurora_oc12()
    series = Series(name="rx fifo", x_label="fifo_cells")
    for depth in fifo_depths:
        cfg = replace(config, rx_fifo_cells=depth)
        sim = Simulator()
        scenario = build_point_to_point(sim, cfg)
        source = OnOffSource(
            sim,
            scenario.sender,
            scenario.vc,
            sdu_size,
            mean_burst_pdus=burst_pdus,
            mean_off_time=2e-3,
        )
        source.start()
        sim.run(until=window)
        fifo = scenario.receiver.rx_fifo
        series.add_point(
            depth,
            loss_ratio=fifo.loss_ratio,
            peak_occupancy=fifo.peak_occupancy,
            mean_occupancy=fifo.occupancy.mean(sim.now),
        )
    result = ExperimentResult(
        experiment_id="F5",
        title="RX FIFO loss/occupancy vs depth (STS-12c, bursty load)",
        series=series,
    )
    result.metrics["loss_at_min_depth"] = series.column("loss_ratio")[0]
    result.metrics["loss_at_max_depth"] = series.column("loss_ratio")[-1]
    result.notes.append(
        "loss falls with depth because inter-burst idle drains the "
        "backlog; sustained overload would defeat any depth"
    )
    return result


# ---------------------------------------------------------------------------
# T4: adaptor memory bandwidth budget
# ---------------------------------------------------------------------------

def run_t4(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sdu_size: int = 9180,
    window: float = 0.02,
) -> ExperimentResult:
    """T4: buffer-memory traffic per cell vs the memory's capability.

    Compares the OC-3 and OC-12 presets side by side, so *config* (like
    *seeds* and *fast_path*) is accepted only for the uniform contract.
    """
    del config, seeds, fast_path
    headers = [
        "link",
        "offered (Mb/s)",
        "memory traffic (Mb/s)",
        "available (Mb/s)",
        "headroom (x)",
    ]
    rows: List[List] = []
    headrooms = {}
    for config in (aurora_oc3(), aurora_oc12()):
        sim = Simulator()
        scenario = build_point_to_point(sim, config)
        GreedySource(sim, scenario.sender, scenario.vc, sdu_size).start()
        sim.run(until=window)
        mem = scenario.receiver.buffer_memory
        required = mem.required_bandwidth_bps(window) / 1e6
        available = mem.spec.total_bandwidth_bps / 1e6
        rows.append(
            [
                config.link.name,
                scenario.goodput_mbps(window),
                required,
                available,
                available / required if required else float("inf"),
            ]
        )
        headrooms[config.link.name] = available / required if required else float("inf")
    result = ExperimentResult(
        experiment_id="T4",
        title="Adaptor buffer-memory bandwidth budget (receive side)",
        headers=headers,
        rows=rows,
    )
    for link_name, headroom in headrooms.items():
        result.metrics[f"headroom_{link_name}"] = headroom
    result.notes.append(
        "every user byte is written once and read once: traffic ~= 2x "
        "goodput; dual-ported memory keeps headroom > 1"
    )
    return result


# ---------------------------------------------------------------------------
# F6: multi-VC interleaving on receive
# ---------------------------------------------------------------------------

def _f6_point(params: Dict[str, Any], streams: RandomStreams) -> Dict[str, float]:
    """F6 kernel: sustainable RX goodput at one VC count, CAM vs software."""
    n_vcs, sdu_size, window = params["n_vcs"], params["sdu_size"], params["window"]
    row = {}
    for cam, label in ((True, "cam_mbps"), (False, "software_mbps")):
        base = aurora_oc3() if cam else aurora_oc3().without_cam()
        # With N VCs completing within one generation, N host buffers
        # are simultaneously in flight through the completion DMA;
        # size the pool to the VC count so buffer starvation does not
        # masquerade as lookup cost.
        base = replace(base, rx_buffer_slots=max(64, 4 * n_vcs))
        config = lab_host(base)
        # One "generation" interleaves one PDU from every VC; the
        # window must span several so bursty completions average out.
        generation = n_vcs * cells_for_sdu(sdu_size) * config.link.cell_time
        run_window = max(window, 8 * generation)
        sim = Simulator(
            SimConfig(fast_path=bool(params.get("fast_path", False)))
        )
        nic = HostNetworkInterface(sim, config, name="rxhost")
        received: List = []
        nic.on_pdu = received.append
        source = InterleavedCellSource(
            sim,
            nic.rx_engine,
            config.link,
            n_vcs,
            sdu_size,
            blocking_fifo=nic.rx_fifo,
        )
        for address in source.vcs:
            nic.open_vc(address=address)
        nic.start()
        source.start()
        sim.run(until=run_window)
        row[label] = windowed_goodput_mbps(received, run_window / 4, run_window)
    return row


def run_f6(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    vc_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    sdu_size: int = 1500,
    window: float = 0.03,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
) -> ExperimentResult:
    """F6: sustainable receive goodput vs interleaved VCs, CAM vs none.

    Cells from N VCs arrive round-robin (one PDU per VC in flight), so
    every reassembly context is touched every N cells.  Delivery uses
    upstream backpressure (blocking FIFO put) to measure the sustainable
    rate rather than overload collapse; the host stages are zeroed so
    the receive engine is the stage under test.  Sweep points build
    their configs from JSON parameters, so *config* (like *seeds*) is
    accepted only for the uniform contract.
    """
    del config, seeds
    # ``fast_path`` joins the point content only when set, so scalar
    # runs keep their historical content hashes (warm caches stay warm).
    fixed: Dict[str, Any] = {"sdu_size": sdu_size, "window": window}
    if fast_path:
        fixed["fast_path"] = True
    spec = SweepSpec.grid(
        "F6",
        axes={"n_vcs": vc_counts},
        fixed=fixed,
    )
    sweep_run = run_sweep(spec, _f6_point, workers=workers, store=store, log=log)
    series = sweep_run.series(name="multi-vc rx")
    result = ExperimentResult(
        experiment_id="F6",
        title="Sustainable RX goodput vs interleaved VCs: CAM vs software lookup",
        series=series,
    )
    cam_col = series.column("cam_mbps")
    sw_col = series.column("software_mbps")
    result.metrics["cam_retention"] = (
        cam_col[-1] / max(cam_col) if max(cam_col) else 0.0
    )
    result.metrics["software_retention"] = (
        sw_col[-1] / max(sw_col) if max(sw_col) else 0.0
    )
    result.notes.append(
        "the CAM's lookup cost is flat in the VC count; the software "
        "probe grows with the table and erodes goodput"
    )
    result.notes.append(
        "the mild CAM-side droop is completion clustering: N interleaved "
        "PDUs finish within one generation and their serial completion "
        "DMAs stall the engine"
    )
    return result


# ---------------------------------------------------------------------------
# T5: architecture comparison
# ---------------------------------------------------------------------------

#: T5's named point list: the four system alternatives, in table order.
T5_ARCHITECTURES: Sequence[str] = ("dual", "shared", "hardwired", "hostsar")

_T5_LABELS: Dict[str, str] = {
    "dual": "offloaded dual-engine",
    "shared": "offloaded shared-engine",
    "hardwired": "hardwired VLSI",
    "hostsar": "host-software SAR",
}


def _t5_point(params: Dict[str, Any], streams: RandomStreams) -> Dict[str, Any]:
    """T5 kernel: one architecture's capacities under the shared workload."""
    arch, sdu_size, window = params["arch"], params["sdu_size"], params["window"]
    nic_cfg = aurora_oc12()

    if arch == "hostsar":
        # Host-based SAR: the host is the engine; measure transmit
        # capacity directly and receive capacity at a 90%-of-model
        # paced feed.
        sar_cfg = HostSarConfig(link=STS12C_622, rx_fifo_cells=4096)
        sar_model = host_cycles_per_pdu_hostsar(sar_cfg, sdu_size, "rx")
        sustainable = sar_cfg.host_cpu.clock_hz / sar_model
        sim = Simulator()
        tx = HostSarInterface(sim, sar_cfg, name="sar-tx")
        rx = HostSarInterface(sim, sar_cfg, name="sar-rx")
        link = PhysicalLink(sim, sar_cfg.link, sink=rx.rx_input)
        tx.attach_tx_link(link)
        vc = tx.open_vc()
        rx.open_vc(address=vc.address)
        tx.start()
        received: List = []
        rx.on_pdu = received.append
        PoissonSource(
            sim, tx, vc.address, sdu_size, pdus_per_second=0.9 * sustainable
        ).start()
        sar_window = max(window, 40 / sustainable)
        sim.run(until=sar_window)
        rx_cap = windowed_goodput_mbps(received, sar_window / 4, sar_window)
        return {
            "tx_cap_mbps": tx.tx_throughput.megabits_per_second(),
            "rx_cap_mbps": rx_cap,
            "duplex_mbps": rx_cap,
            "host_cycles_per_pdu": sar_model,
            "flexible": "yes",
        }

    shared = arch == "shared"
    base = (
        hardwired_config(STS12C_622, base=nic_cfg)
        if arch == "hardwired"
        else nic_cfg
    )
    cfg = lab_host(base)
    return {
        "tx_cap_mbps": _measure_tx_capacity(cfg, sdu_size, window, shared=shared),
        "rx_cap_mbps": _measure_rx_capacity(cfg, sdu_size, window, shared=shared),
        "duplex_mbps": _measure_duplex_aggregate(
            cfg, sdu_size, window, shared=shared
        ),
        "host_cycles_per_pdu": host_cycles_per_pdu_offloaded(
            nic_cfg, sdu_size, "rx"
        ),
        "flexible": "no" if arch == "hardwired" else "yes",
    }


def run_t5(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sdu_size: int = 9180,
    window: float = 0.04,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
) -> ExperimentResult:
    """T5: the four system alternatives under an identical workload.

    Per architecture we measure sustainable transmit capacity, receive
    capacity, and full-duplex aggregate (both directions active on one
    interface -- where a shared engine pays for its single instruction
    stream).  Host cost columns come from the cycle models.  Each
    architecture point builds its own config, so *config* (like *seeds*
    and *fast_path*) is accepted only for the uniform contract.
    """
    del config, seeds, fast_path
    headers = [
        "architecture",
        "tx cap (Mb/s)",
        "rx cap (Mb/s)",
        "duplex agg (Mb/s)",
        "host cycles/PDU (rx)",
        "flexible",
    ]
    spec = SweepSpec.from_points(
        "T5",
        points=[{"arch": arch} for arch in T5_ARCHITECTURES],
        fixed={"sdu_size": sdu_size, "window": window},
    )
    sweep_run = run_sweep(spec, _t5_point, workers=workers, store=store, log=log)
    rows: List[List] = []
    aggregates: Dict[str, float] = {}
    for point, values in zip(sweep_run.points, sweep_run.values):
        label = _T5_LABELS[point.params["arch"]]
        rows.append(
            [
                label,
                values["tx_cap_mbps"],
                values["rx_cap_mbps"],
                values["duplex_mbps"],
                values["host_cycles_per_pdu"],
                values["flexible"],
            ]
        )
        aggregates[label] = values["duplex_mbps"]

    result = ExperimentResult(
        experiment_id="T5",
        title=f"Architecture comparison, {sdu_size}-byte PDUs at STS-12c",
        headers=headers,
        rows=rows,
    )
    result.metrics["offloaded_vs_hostsar"] = (
        aggregates["offloaded dual-engine"] / aggregates["host-software SAR"]
        if aggregates.get("host-software SAR")
        else float("inf")
    )
    result.metrics["hardwired_vs_offloaded"] = (
        aggregates["hardwired VLSI"] / aggregates["offloaded dual-engine"]
        if aggregates.get("offloaded dual-engine")
        else float("inf")
    )
    result.metrics["dual_vs_shared"] = (
        aggregates["offloaded dual-engine"] / aggregates["offloaded shared-engine"]
        if aggregates.get("offloaded shared-engine")
        else float("inf")
    )
    result.notes.append(
        "offload wins on host cost; hardwired wins on ceiling; the "
        "shared engine pays under full-duplex load"
    )
    return result


# ---------------------------------------------------------------------------
# F7: engine clock sweep (ablation)
# ---------------------------------------------------------------------------

def _f7_point(params: Dict[str, Any], streams: RandomStreams) -> Dict[str, float]:
    """F7 kernel: saturation throughput at one engine clock."""
    mhz, sdu_size = params["engine_mhz"], params["sdu_size"]
    base = aurora_oc12()
    config = lab_host(base.with_engines(base.tx_engine.at_clock(mhz * 1e6)))
    point = {
        "tx_model_mbps": tx_throughput_model_mbps(config, sdu_size),
        "rx_model_mbps": rx_throughput_model_mbps(config, sdu_size),
    }
    if params["simulate"]:
        point["tx_sim_mbps"] = _measure_tx_capacity(
            config, sdu_size, params["window"]
        )
        point["rx_sim_mbps"] = _measure_rx_capacity(
            config, sdu_size, params["window"]
        )
    return point


def run_f7(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    clocks_mhz: Sequence[float] = (10, 16, 20, 25, 33, 40, 50, 66),
    sdu_size: int = 9180,
    window: float = 0.02,
    simulate: bool = True,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
) -> ExperimentResult:
    """F7: how fast must the engines be for each link rate?

    Per direction, the simulated point measures the *sustainable* rate:
    transmit by draining a greedy sender onto the wire, receive by
    feeding the engine through a backpressured FIFO, both with free
    host software.  Sweep points derive their configs from the clock
    axis, so *config* (like *seeds* and *fast_path*) is accepted only
    for the uniform contract.
    """
    del config, seeds, fast_path
    base = aurora_oc12()
    spec = SweepSpec.grid(
        "F7",
        axes={"engine_mhz": clocks_mhz},
        fixed={"sdu_size": sdu_size, "window": window, "simulate": simulate},
    )
    sweep_run = run_sweep(spec, _f7_point, workers=workers, store=store, log=log)
    series = sweep_run.series(name="clock sweep")
    result = ExperimentResult(
        experiment_id="F7",
        title="Saturation throughput vs engine clock (STS-12c link)",
        series=series,
    )
    oc3_user = STS3C_155.effective_user_rate_bps / 1e6
    oc12_user = STS12C_622.effective_user_rate_bps / 1e6

    def engine_threshold(direction: str, target: float) -> float:
        """Lowest swept clock whose per-cell budget clears *target*."""
        fn = tx_saturation_mbps if direction == "tx" else rx_saturation_mbps
        for mhz in series.x:
            cfg = base.with_engines(base.tx_engine.at_clock(mhz * 1e6))
            if fn(cfg) >= target * 0.999:
                return mhz
        return float("inf")

    result.metrics["rx_mhz_for_oc3"] = engine_threshold("rx", oc3_user)
    result.metrics["rx_mhz_for_oc12"] = engine_threshold("rx", oc12_user)
    result.metrics["tx_mhz_for_oc12"] = engine_threshold("tx", oc12_user)
    result.notes.append(
        "transmit saturates STS-12c at a lower clock than receive; the "
        "receive gap is the case for per-cell hardware assists"
    )
    return result


def _measure_tx_capacity(
    config: NicConfig, sdu_size: int, window: float, shared: bool = False
) -> float:
    """Transmit-side sustainable goodput: sender into a counting sink."""
    sim = Simulator()
    sender = HostNetworkInterface(sim, config, name="txhost")
    if shared:
        share_engine(sender)
    wire_times: List[float] = []

    def sink(cell) -> None:
        if cell.end_of_frame:
            wire_times.append(sim.now)

    link = PhysicalLink(sim, config.link, sink=sink, name="tx-probe")
    sender.attach_tx_link(link)
    vc = sender.open_vc()
    GreedySource(sim, sender, vc.address, sdu_size).start()
    sim.run(until=window)
    if len(wire_times) < 3:
        return 0.0
    span = wire_times[-1] - wire_times[0]
    return ((len(wire_times) - 1) * sdu_size * 8 / span) / 1e6 if span > 0 else 0.0


def _measure_rx_capacity(
    config: NicConfig, sdu_size: int, window: float, shared: bool = False
) -> float:
    """Receive-side sustainable goodput: backpressured cell feed."""
    sim = Simulator()
    nic = HostNetworkInterface(sim, config, name="rxhost")
    if shared:
        share_engine(nic)
    received: List = []
    nic.on_pdu = received.append
    vc = nic.open_vc(address=VcAddress(0, 100))
    nic.start()
    segmenter = Aal5Segmenter(vc.address)
    payload = make_payload(sdu_size)

    def feeder():
        while True:
            for cell in segmenter.segment(payload):
                yield sim.timeout(config.link.cell_time)
                yield nic.rx_fifo.put(cell)

    sim.process(feeder())
    sim.run(until=window)
    return steady_goodput_mbps(received)


def _measure_duplex_aggregate(
    config: NicConfig, sdu_size: int, window: float, shared: bool = False
) -> float:
    """Full-duplex sustainable aggregate on one interface.

    The interface transmits greedily (counting sink) while its receive
    path absorbs a backpressured feed; the aggregate is where a shared
    engine's single instruction stream shows up.
    """
    sim = Simulator()
    nic = HostNetworkInterface(sim, config, name="duplexhost")
    if shared:
        share_engine(nic)
    wire_times: List[float] = []

    def sink(cell) -> None:
        if cell.end_of_frame:
            wire_times.append(sim.now)

    link = PhysicalLink(sim, config.link, sink=sink, name="duplex-probe")
    nic.attach_tx_link(link)
    tx_vc = nic.open_vc(address=VcAddress(0, 90))
    rx_vc = nic.open_vc(address=VcAddress(0, 100))
    received: List = []
    nic.on_pdu = received.append
    nic.start()
    GreedySource(sim, nic, tx_vc.address, sdu_size).start()
    segmenter = Aal5Segmenter(rx_vc.address)
    payload = make_payload(sdu_size)

    def feeder():
        while True:
            for cell in segmenter.segment(payload):
                yield sim.timeout(config.link.cell_time)
                yield nic.rx_fifo.put(cell)

    sim.process(feeder())
    sim.run(until=window)
    tx_mbps = 0.0
    if len(wire_times) >= 3:
        span = wire_times[-1] - wire_times[0]
        if span > 0:
            tx_mbps = ((len(wire_times) - 1) * sdu_size * 8 / span) / 1e6
    return tx_mbps + steady_goodput_mbps(received)


# ---------------------------------------------------------------------------
# F8: analytic model vs simulation
# ---------------------------------------------------------------------------

def run_f8(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sizes: Sequence[int] = (64, 256, 1024, 4096, 9180, 32768),
    window: float = 0.05,
) -> ExperimentResult:
    """F8: cross-validation -- closed forms vs the discrete-event core.

    *seeds* and *fast_path* are accepted only for the uniform contract.
    """
    del seeds, fast_path
    config = config if config is not None else aurora_oc3()
    headers = [
        "sdu_bytes",
        "tx model (Mb/s)",
        "tx sim (Mb/s)",
        "tput err (%)",
        "lat model (us)",
        "lat sim (us)",
        "lat err (%)",
    ]
    rows: List[List] = []
    worst_tput_err = 0.0
    worst_lat_err = 0.0
    for size in sizes:
        model_mbps = min(
            tx_throughput_model_mbps(config, size),
            rx_throughput_model_mbps(config, size),
        )
        sim = Simulator()
        scenario = build_point_to_point(sim, lab_host(config))
        GreedySource(sim, scenario.sender, scenario.vc, size).start()
        sim.run(until=_window_for(size, window, config.link))
        sim_mbps = steady_goodput_mbps(scenario.received)
        tput_err = abs(sim_mbps - model_mbps) / model_mbps * 100

        sim2 = Simulator()
        quiet = build_point_to_point(sim2, config)
        delivery_times: List[float] = []
        quiet.receiver.on_pdu = lambda _c: delivery_times.append(sim2.now)
        post_time = sim2.now
        quiet.sender.post(quiet.vc, make_payload(size))
        sim2.run(until=1.0)
        lat_sim = delivery_times[0] - post_time if delivery_times else float("nan")
        lat_model = latency_model(config, size).total
        lat_err = abs(lat_sim - lat_model) / lat_model * 100

        worst_tput_err = max(worst_tput_err, tput_err)
        worst_lat_err = max(worst_lat_err, lat_err)
        rows.append(
            [size, model_mbps, sim_mbps, tput_err, lat_model * 1e6, lat_sim * 1e6, lat_err]
        )
    result = ExperimentResult(
        experiment_id="F8",
        title="Analytic model vs simulation (STS-3c)",
        headers=headers,
        rows=rows,
    )
    result.metrics["worst_throughput_error_pct"] = worst_tput_err
    result.metrics["worst_latency_error_pct"] = worst_lat_err
    result.notes.append(
        "residual error is pipelining/queueing the closed forms ignore"
    )
    return result


# ---------------------------------------------------------------------------
# A1-A4: design-choice ablations
# ---------------------------------------------------------------------------

def run_a1(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sizes: Sequence[int] = (64, 512, 1500, 9180, 65535),
    window: float = 0.03,
) -> ExperimentResult:
    """A1: adaptation-layer efficiency -- AAL5-class vs AAL3/4.

    The simple-and-efficient layer's pitch: AAL3/4 pays 4 of every 48
    payload bytes to per-cell SAR fields (plus a few engine cycles),
    so at link saturation it delivers ~44/48 of AAL5's goodput.
    Compares AAL presets internally, so *config* (like *seeds* and
    *fast_path*) is accepted only for the uniform contract.
    """
    del config, seeds, fast_path
    series = Series(name="aal efficiency", x_label="sdu_bytes")
    for size in sizes:
        run_window = _window_for(size, window, STS3C_155)
        row = {}
        for label, config in (
            ("aal5_mbps", lab_host(aurora_oc3())),
            ("aal34_mbps", lab_host(aurora_oc3().with_aal34())),
        ):
            sim = Simulator()
            scenario = build_point_to_point(sim, config)
            GreedySource(sim, scenario.sender, scenario.vc, size).start()
            sim.run(until=run_window)
            row[label] = steady_goodput_mbps(scenario.received)
        series.add_point(size, **row)
    result = ExperimentResult(
        experiment_id="A1",
        title="Goodput: AAL5-class vs AAL3/4 data path (STS-3c)",
        series=series,
    )
    aal5 = series.column("aal5_mbps")
    aal34 = series.column("aal34_mbps")
    result.metrics["efficiency_ratio_at_mtu"] = (
        aal34[sizes.index(9180)] / aal5[sizes.index(9180)]
        if aal5[sizes.index(9180)]
        else 0.0
    )
    result.notes.append(
        "the 4-bytes-per-cell SAR tax costs AAL3/4 ~8% of goodput at "
        "saturation -- the quantitative case for the AAL5 lineage"
    )
    return result


def run_a2(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    sizes: Sequence[int] = (512, 9180),
    crc_cycles: int = 130,
) -> ExperimentResult:
    """A2: the CRC hardware assist -- what software CRC would cost.

    Moving the CRC into engine software adds ~130 cycles per cell
    (table-driven over 48 bytes), multiplying the per-cell budget and
    collapsing the saturation throughput.  Pure closed-form: the cost
    models make this a one-line ablation.  *config*, *seeds* and
    *fast_path* are accepted only for the uniform contract.
    """
    del config, seeds, fast_path
    headers = [
        "sdu_bytes",
        "hw CRC tx (Mb/s)",
        "sw CRC tx (Mb/s)",
        "hw CRC rx (Mb/s)",
        "sw CRC rx (Mb/s)",
    ]
    rows: List[List] = []
    base = aurora_oc3()
    software = replace(
        base,
        tx_costs=base.tx_costs.with_software_crc(crc_cycles),
        rx_costs=base.rx_costs.with_software_crc(crc_cycles),
    )
    for size in sizes:
        rows.append(
            [
                size,
                tx_throughput_model_mbps(base, size),
                tx_throughput_model_mbps(software, size),
                rx_throughput_model_mbps(base, size),
                rx_throughput_model_mbps(software, size),
            ]
        )
    result = ExperimentResult(
        experiment_id="A2",
        title=f"CRC in hardware vs engine software ({crc_cycles} cyc/cell)",
        headers=headers,
        rows=rows,
    )
    large = rows[-1]
    result.metrics["tx_slowdown"] = large[1] / large[2]
    result.metrics["rx_slowdown"] = large[3] / large[4]
    result.notes.append(
        "software CRC grows the per-cell budget ~9x (16 -> 146 cycles), "
        "halving even STS-3c throughput: per-byte work must live in "
        "hardware -- the paper's division of labour"
    )
    return result


def run_a3(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    windows_us: Sequence[float] = (0, 50, 200, 500),
    sdu_size: int = 1500,
    pdus: int = 60,
) -> ExperimentResult:
    """A3: interrupt coalescing -- host cycles vs added latency.

    Merging completion interrupts amortises the entry/exit cycles but
    delays delivery by up to the coalescing window: the classic
    throughput/latency trade, measured on the real pipeline.  *config*,
    *seeds* and *fast_path* are accepted only for the uniform contract.
    """
    del config, seeds, fast_path
    headers = [
        "window (us)",
        "interrupts",
        "host cyc/PDU",
        "mean latency (us)",
    ]
    rows: List[List] = []
    for window_us in windows_us:
        config = replace(
            aurora_oc3(),
            interrupt=InterruptSpec(coalesce_window=window_us * 1e-6),
        )
        sim = Simulator()
        scenario = build_point_to_point(sim, config)
        latencies: List[float] = []
        inner = scenario.received

        def on_pdu(completion, latencies=latencies):
            # Time to the *user callback*: the quantity coalescing
            # defers (delivered_at only marks the DMA landing).
            inner.append(completion)
            if completion.posted_at is not None:
                latencies.append(sim.now - completion.posted_at)

        scenario.receiver.on_pdu = on_pdu
        # Light open-loop load: latency then reflects the unloaded path
        # plus the coalescing delay, not queueing noise.
        PoissonSource(
            sim, scenario.sender, scenario.vc, sdu_size, pdus_per_second=400.0
        ).start()
        sim.run(until=pdus / 400.0)
        delivered = len(latencies)
        rows.append(
            [
                window_us,
                scenario.receiver.interrupts.delivered.count,
                scenario.receiver.cpu.total_cycles / delivered
                if delivered
                else float("nan"),
                sum(latencies) / delivered * 1e6 if delivered else float("nan"),
            ]
        )
    result = ExperimentResult(
        experiment_id="A3",
        title=f"Interrupt coalescing ({sdu_size}-byte PDUs, STS-3c)",
        headers=headers,
        rows=rows,
    )
    result.metrics["cycles_saved_ratio"] = (
        rows[0][2] / rows[-1][2] if rows[-1][2] else float("nan")
    )
    result.metrics["latency_cost_us"] = rows[-1][3] - rows[0][3]
    result.notes.append(
        "coalescing trades completion latency for host cycles; with "
        "per-PDU interrupts already cheap, the win is modest -- offload "
        "itself was the big lever"
    )
    return result


def run_a4(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    burst_words: Sequence[int] = (8, 16, 32, 64, 128, 256),
    sdu_size: int = 9180,
) -> ExperimentResult:
    """A4: host-bus burst length -- DMA efficiency vs bus hold time.

    Short bursts re-arbitrate constantly (setup cycles dominate); long
    bursts approach the bus's data-phase rate but hold it longer.  The
    effective bandwidth feeds straight into the large-PDU throughput
    ceiling via the staging-DMA term.  *seeds* and *fast_path* are
    accepted only for the uniform contract.
    """
    del seeds, fast_path
    series = Series(name="bus burst sweep", x_label="burst_words")
    base = config if config is not None else aurora_oc12()
    for words in burst_words:
        bus = replace(base.bus, max_burst_words=words)
        config = replace(base, bus=bus)
        series.add_point(
            words,
            effective_bus_mbps=bus.effective_bandwidth_bps(sdu_size) / 1e6,
            tx_model_mbps=tx_throughput_model_mbps(config, sdu_size),
        )
    result = ExperimentResult(
        experiment_id="A4",
        title=f"Bus burst length vs effective bandwidth ({sdu_size}-byte PDUs)",
        series=series,
    )
    eff = series.column("effective_bus_mbps")
    result.metrics["burst_gain"] = eff[-1] / eff[0]
    result.notes.append(
        "long DMA bursts amortise arbitration; the architecture's "
        "100 MB/s-class bus only delivers near peak with 64+ word bursts"
    )
    return result


# ---------------------------------------------------------------------------
# R1: graceful degradation -- goodput under cell loss, EPD/PPD on vs off
# ---------------------------------------------------------------------------

def _r1_point(params: Dict[str, Any], streams: RandomStreams) -> Dict[str, float]:
    """R1 kernel: goodput at one cell-loss rate, EPD/PPD on vs off.

    Both policies share the loss stream (common random numbers: the
    *same* cells vanish under either policy, so the comparison isolates
    the policy).  The stream is seeded by the explicit ``seed``
    parameter -- part of the point's content hash -- so the draw
    sequence is a function of the point, never of the worker that
    happens to execute it.
    """
    return _r1_measure(
        lab_host(aurora_oc12()),
        params["loss_rate"],
        params["n_vcs"],
        params["sdu_size"],
        params["window"],
        params["seed"],
        fast_path=bool(params.get("fast_path", False)),
    )


def _r1_measure(
    base: NicConfig,
    p: float,
    n_vcs: int,
    sdu_size: int,
    window: float,
    seed: int,
    fast_path: bool = False,
) -> Dict[str, float]:
    """Measure one R1 loss-rate point on *base* (host costs pre-zeroed)."""
    from repro.atm.errors import UniformLoss
    from repro.nic.rx import FrameDiscardPolicy

    policies = (
        ("discard_off_mbps", None),
        ("epd_ppd_mbps", FrameDiscardPolicy()),
    )
    point = {}
    for label, policy in policies:
        cfg = replace(base, frame_discard=policy)
        sim = Simulator(SimConfig(fast_path=fast_path))
        nic = HostNetworkInterface(sim, cfg, name="rxhost")
        received: List = []
        nic.on_pdu = received.append
        for i in range(n_vcs):
            nic.open_vc(address=VcAddress(0, 100 + i))
        nic.start()
        link = PhysicalLink(
            sim,
            cfg.link,
            sink=nic.rx_input,
            loss_model=UniformLoss(
                p, rng=RandomStreams(seed).stream("r1.loss")
            ),
            name="lossy-wire",
        )
        source = InterleavedCellSource(
            sim,
            sink=link.send,
            link=cfg.link,
            n_vcs=n_vcs,
            sdu_size=sdu_size,
        )
        source.start()
        sim.run(until=window)
        point[label] = windowed_goodput_mbps(received, window / 4, window)
    return point


def run_r1(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    loss_rates: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05),
    n_vcs: int = 8,
    sdu_size: int = 8192,
    window: float = 0.01,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
) -> ExperimentResult:
    """R1: goodput vs cell-loss rate with frame discard on vs off.

    The receive path is overloaded on purpose: an interleaved wire at
    OC-12c rate through a lossy link, against the default 25 MHz engine
    that cannot keep up (DESIGN.md F7).  Without frame discard every
    FIFO overflow holes a *random* frame, so nearly all frames die at
    the CRC check while their surviving cells still burn engine cycles.
    EPD/PPD converts the same cell budget into whole delivered frames:
    refused frames cost nothing, admitted frames arrive intact.

    R1 sweeps loss rates under one loss-model seed, so only the first
    entry of *seeds* is used (historically the ``seed=7`` parameter).
    """
    seed = seeds[0] if seeds else 7
    if config is not None:
        # A custom config is not a sweepable (JSON) parameter; run the
        # kernel-equivalent loop inline for that research use.
        return _run_r1_custom(
            config, loss_rates, n_vcs, sdu_size, window, seed,
            fast_path=fast_path,
        )
    fixed: Dict[str, Any] = {
        "n_vcs": n_vcs,
        "sdu_size": sdu_size,
        "window": window,
        "seed": seed,
    }
    if fast_path:
        # Only part of the point content when set: scalar runs keep
        # their historical content hashes (warm caches stay warm).
        fixed["fast_path"] = True
    spec = SweepSpec.grid(
        "R1",
        axes={"loss_rate": loss_rates},
        fixed=fixed,
        x_axis="loss_rate",
    )
    sweep_run = run_sweep(spec, _r1_point, workers=workers, store=store, log=log)
    series = sweep_run.series(name="goodput under loss", x_label="loss_rate")
    series.x_label = "cell_loss_rate"
    base = lab_host(aurora_oc12())
    result = ExperimentResult(
        experiment_id="R1",
        title=f"Goodput under cell loss, EPD/PPD vs none ({base.link.name})",
        series=series,
    )
    off_col = series.column("discard_off_mbps")
    on_col = series.column("epd_ppd_mbps")
    for p, off, on in zip(series.x, off_col, on_col):
        result.metrics[f"epd_gain_mbps_at_{p:g}"] = on - off
    result.notes.append(
        "frame discard turns random cell holes into whole-frame drops: "
        "the engine spends its limited cycles only on frames that can "
        "still be delivered intact"
    )
    return result


def _run_r1_custom(
    config: NicConfig,
    loss_rates: Sequence[float],
    n_vcs: int,
    sdu_size: int,
    window: float,
    seed: int,
    fast_path: bool = False,
) -> ExperimentResult:
    """The non-sweep R1 path for caller-supplied configurations."""
    base = lab_host(config)
    series = Series(name="goodput under loss", x_label="cell_loss_rate")
    for p in loss_rates:
        point = _r1_measure(
            base, p, n_vcs, sdu_size, window, seed, fast_path=fast_path
        )
        series.add_point(p, **point)
    result = ExperimentResult(
        experiment_id="R1",
        title=f"Goodput under cell loss, EPD/PPD vs none ({base.link.name})",
        series=series,
    )
    off_col = series.column("discard_off_mbps")
    on_col = series.column("epd_ppd_mbps")
    for p, off, on in zip(series.x, off_col, on_col):
        result.metrics[f"epd_gain_mbps_at_{p:g}"] = on - off
    result.notes.append(
        "frame discard turns random cell holes into whole-frame drops: "
        "the engine spends its limited cycles only on frames that can "
        "still be delivered intact"
    )
    return result


# ---------------------------------------------------------------------------
# O1: observability cross-check -- measured cycle budgets vs configured
# ---------------------------------------------------------------------------

def run_o1(
    config: Optional[NicConfig] = None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    duration: Optional[float] = None,
) -> ExperimentResult:
    """O1: the profiler's measured T1/T2 budgets vs the configured ones.

    T1/T2 print what the cost models are *configured* to charge; O1
    re-derives the same per-position budgets from a live simulation via
    :class:`repro.obs.CycleProfiler` (attached to both engines of F2's
    greedy-transmit scenario) and checks they agree.  A nonzero
    deviation would mean the pipeline charged cycles the budget tables
    do not show -- exactly the drift the observability layer exists to
    catch.  Runs the traced F2 scenario as-is, so *config*, *seeds*
    and *fast_path* are accepted only for the uniform contract.
    """
    del config, seeds, fast_path
    from repro.obs.runner import run_traced

    run = run_traced("f2", duration=duration)
    config = aurora_oc3()
    headers = [
        "engine",
        "cell position",
        "cells",
        "configured (cyc)",
        "measured (cyc)",
        "deviation (cyc)",
    ]
    rows: List[List] = []
    worst = 0.0
    for engine, configured_cycles in (
        ("tx", lambda p: config.tx_costs.cell_cycles(p)),
        ("rx", lambda p: config.rx_costs.cell_cycles(p, cam_fitted=True)),
    ):
        for position in CellPosition:
            measured = run.profiler.cycles_per_cell(engine, position)
            if measured is None:
                continue
            configured = configured_cycles(position)
            deviation = measured - configured
            worst = max(worst, abs(deviation))
            rows.append(
                [
                    engine,
                    position.value,
                    run.profiler.cells_at(engine, position),
                    configured,
                    measured,
                    deviation,
                ]
            )
    result = ExperimentResult(
        experiment_id="O1",
        title="Measured vs configured engine cycle budgets (live run)",
        headers=headers,
        rows=rows,
    )
    tx_middle = run.profiler.cycles_per_cell("tx", CellPosition.MIDDLE)
    rx_middle = run.profiler.cycles_per_cell("rx", CellPosition.MIDDLE)
    result.metrics["tx_middle_cycles"] = tx_middle or float("nan")
    result.metrics["rx_middle_cycles"] = rx_middle or float("nan")
    result.metrics["max_deviation_cycles"] = worst
    result.metrics["events_traced"] = float(len(run.recorder))
    result.notes.append(
        "middle-cell budgets (16 tx / 22 rx with the CAM) measured "
        "from executed cells, not read from the configuration"
    )
    return result


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

# R2 lives with the recovery plane it measures; P1 with the fast path
# it benchmarks; C1 with the traffic-management plane; S1 with the
# massive-multiplexing scale plane.  All import ExperimentResult
# lazily, so these imports cannot cycle.
from repro.resilience.experiment import run_r2  # noqa: E402
from repro.results.perf import run_p1  # noqa: E402
from repro.scale.experiment import run_s1  # noqa: E402
from repro.tm.experiment import run_c1  # noqa: E402

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "T1": run_t1,
    "T2": run_t2,
    "F2": run_f2,
    "F3": run_f3,
    "F4": run_f4,
    "T3": run_t3,
    "F5": run_f5,
    "T4": run_t4,
    "F6": run_f6,
    "T5": run_t5,
    "F7": run_f7,
    "F8": run_f8,
    "A1": run_a1,
    "A2": run_a2,
    "A3": run_a3,
    "A4": run_a4,
    "R1": run_r1,
    "R2": run_r2,
    "O1": run_o1,
    "P1": run_p1,
    "C1": run_c1,
    "S1": run_s1,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    runner = EXPERIMENTS.get(experiment_id.upper())
    if runner is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return runner()
