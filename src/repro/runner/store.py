"""Persistent sweep results: content-addressed cache plus JSONL logs.

The :class:`ResultStore` is a flat on-disk cache under ``.repro-cache/``
(git-ignored).  A point's cached values live at::

    .repro-cache/points/<kk>/<key>.json

where ``key = sha256(point_hash : kernel_name : fingerprint)`` -- the
point's content hash (parameters), the kernel that computed it, and the
:func:`cost_model_fingerprint` of the configured cost models.  Touching
any cycle budget, engine clock, or link rate changes the fingerprint
and silently invalidates every cached point, so a warm cache can never
serve results from a different model of the hardware.

Floats survive the round trip bit-exactly: ``json`` serialises doubles
via the shortest-round-trip ``repr`` and parses them back to the same
IEEE-754 value, which is what lets a cache-warm re-run reproduce a
sweep byte for byte.

A :class:`RunLog` is the sweep's flight recorder: one JSON object per
line (``sweep_started``, ``point_cached`` / ``point_completed`` /
``point_failed`` per point, ``sweep_completed`` with the executor's
counters).  Durations come from ``time.perf_counter`` deltas -- wall
timestamps stay out so logs carry no entropy beyond scheduling.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, IO, Mapping, Optional

from repro.runner.spec import Point

#: Bump to invalidate every cache entry on a layout/semantics change.
SCHEMA_VERSION = 1

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def cost_model_fingerprint() -> str:
    """A short digest of everything the cost models charge.

    Covers both preset design points (STS-3c and STS-12c): per-operation
    transmit/receive budgets, engine clocks, link rates, DMA timings,
    and host OS/interrupt costs.  Any edit to those tables yields a new
    fingerprint -- and therefore a cold cache -- without the store
    having to understand the models themselves.
    """
    from dataclasses import asdict

    from repro.nic.config import aurora_oc3, aurora_oc12

    payload: Dict[str, Any] = {"schema": SCHEMA_VERSION}
    for label, config in (("oc3", aurora_oc3()), ("oc12", aurora_oc12())):
        payload[label] = {
            "tx_budget": config.tx_costs.breakdown(),
            "rx_budget": config.rx_costs.breakdown(),
            "tx_clock_hz": config.tx_engine.clock_hz,
            "rx_clock_hz": config.rx_engine.clock_hz,
            "link": [
                config.link.name,
                config.link.line_rate_bps,
                config.link.payload_rate_bps,
            ],
            "dma": asdict(config.dma),
            "bus": asdict(config.bus),
            "os": asdict(config.os_costs),
            "interrupt": asdict(config.interrupt),
            "host_clock_hz": config.host_cpu.clock_hz,
        }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class ResultStore:
    """Content-addressed persistence for executed sweep points."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        self.fingerprint = (
            fingerprint if fingerprint is not None else cost_model_fingerprint()
        )

    # -- keys --------------------------------------------------------------

    def key(self, point: Point, kernel_name: str) -> str:
        """Cache key: point identity x kernel x cost-model fingerprint."""
        blob = f"{point.hash}:{kernel_name}:{self.fingerprint}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / "points" / key[:2] / f"{key}.json"

    # -- cache -------------------------------------------------------------

    def get(self, point: Point, kernel_name: str) -> Optional[Dict[str, Any]]:
        """The cached values for *point*, or None on a miss.

        A corrupt or unreadable entry is a miss, never an error: the
        point simply re-executes and overwrites it.
        """
        path = self._path(self.key(point, kernel_name))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or "values" not in payload:
            return None
        values = payload["values"]
        return values if isinstance(values, dict) else None

    def put(
        self, point: Point, kernel_name: str, values: Mapping[str, Any]
    ) -> Path:
        """Persist *values* for *point*; returns the entry's path.

        The write goes through a same-directory temp file and an atomic
        rename, so a crashed run never leaves a half-written entry for
        :meth:`get` to trip over.
        """
        path = self._path(self.key(point, kernel_name))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment": point.experiment,
            "params": dict(point.params),
            "point_hash": point.hash,
            "kernel": kernel_name,
            "fingerprint": self.fingerprint,
            "values": dict(values),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        tmp.replace(path)
        return path

    def __contains__(self, item) -> bool:
        point, kernel_name = item
        return self._path(self.key(point, kernel_name)).exists()

    def entries(self) -> int:
        """Number of cached points on disk."""
        base = self.root / "points"
        if not base.exists():
            return 0
        return sum(1 for _ in base.rglob("*.json"))

    def run_log_path(self, name: str) -> Path:
        """The default location for a named run log."""
        return self.root / "runs" / f"{name}.jsonl"


class RunLog:
    """Append-only JSONL journal of one sweep execution."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = None
        self.events_written = 0

    def event(self, name: str, **fields: Any) -> None:
        """Write one event line (opens the file lazily, truncating)."""
        if self._fh is None:
            self._fh = self.path.open("w", encoding="utf-8")
        record = {"event": name}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
