"""``python -m repro bench``: the baseline regression gate's front door.

Three modes over the benched experiment set (see
:data:`repro.runner.registry.BENCH_KWARGS`):

- ``bench`` -- run the reduced benches and print their metrics;
- ``bench --check`` -- additionally judge every metric against the
  committed ``benchmarks/baselines/*.json`` tolerance bands and exit
  nonzero on any regression (what CI keys on);
- ``bench --update`` -- regenerate the baseline files from the current
  tree (review the diff like any other code change).

Sweep-shaped experiments honour ``--workers`` and the result cache;
``--log`` writes the sweeps' JSONL flight recorder for artifact upload.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.runner.gate import Baseline, BaselineGate, GateReport
from repro.runner.store import ResultStore, RunLog


def default_baseline_dir() -> Path:
    """``benchmarks/baselines/`` at the repo root (resolved from here)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baselines"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-atm bench",
        description=(
            "Run reduced-parameter benchmark experiments and gate them "
            "against committed baselines"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to bench (default: every benched id)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against committed baselines; exit 1 on regression",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline files from this run",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="process-pool width for sweep-shaped experiments (0 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the .repro-cache result store",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-store location (default: .repro-cache)",
    )
    parser.add_argument(
        "--baseline-dir",
        metavar="DIR",
        default=None,
        help="baseline directory (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--log",
        metavar="PATH",
        default=None,
        help="write the sweeps' JSONL run log here",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.runner import registry

    args = build_parser().parse_args(
        list(sys.argv[1:] if argv is None else argv)
    )
    if args.check and args.update:
        print("--check and --update are mutually exclusive", file=sys.stderr)
        return 2

    gate = BaselineGate(
        Path(args.baseline_dir)
        if args.baseline_dir is not None
        else default_baseline_dir()
    )
    ids = (
        [e.upper() for e in args.experiments]
        if args.experiments
        else list(registry.BENCH_DEFAULT)
    )
    if not ids:
        print("no benched experiments registered", file=sys.stderr)
        return 2

    store = (
        None if args.no_cache else ResultStore(root=args.cache_dir)
    )
    log = RunLog(args.log) if args.log is not None else None
    reports: Dict[str, GateReport] = {}
    failures: List[str] = []
    try:
        for experiment_id in ids:
            try:
                entry = registry.get(experiment_id)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            kwargs = dict(entry.bench_kwargs)
            if args.check:
                # Re-run with the parameters the baseline was made with,
                # so the comparison is like for like even if the
                # registry defaults moved since.
                try:
                    kwargs = dict(gate.load(experiment_id).bench_kwargs)
                except FileNotFoundError:
                    failures.append(experiment_id)
                    print(
                        f"{experiment_id}: no baseline at "
                        f"{gate.path_for(experiment_id)} "
                        "(run bench --update and commit it)"
                    )
                    continue
            result = entry(
                workers=args.workers, store=store, log=log, **kwargs
            )
            metrics = {k: float(v) for k, v in result.metrics.items()}
            if args.check:
                report = gate.compare(experiment_id, metrics)
                reports[experiment_id] = report
                print(f"{experiment_id}:")
                print(report.format())
                if not report.ok:
                    failures.append(experiment_id)
            elif args.update:
                path = gate.write(
                    Baseline(
                        experiment=experiment_id,
                        metrics=metrics,
                        bench_kwargs=kwargs,
                        note=entry.description,
                    )
                )
                print(f"{experiment_id}: wrote {path}")
            else:
                print(f"{experiment_id}:")
                for name, value in sorted(metrics.items()):
                    print(f"  {name} = {value:.6g}")
    finally:
        if log is not None:
            log.close()

    if args.check:
        merged = gate.merge(reports)
        verdict = merged.format().splitlines()[-1]
        print(verdict)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
