"""The experiment registry: one typed entry per experiment id.

:data:`repro.results.experiments.EXPERIMENTS` maps ids to bare
callables; this module wraps each in an :class:`ExperimentEntry`
recording what the CLI and the bench harness need to know about it:

- a one-line *description* (the run function's docstring headline),
  so ``python -m repro --help`` can enumerate every experiment;
- whether the experiment is *sweep-shaped* -- migrated onto
  :mod:`repro.runner` and therefore accepting ``workers`` / ``store``
  / ``log`` keyword arguments;
- the reduced *bench_kwargs* the regression gate runs it with (full
  evaluation parameters take minutes; the gate needs seconds).

This module imports the experiments (and the experiments import
``repro.runner``), which is why ``repro.runner.__init__`` must never
import it back -- callers reach it as ``repro.runner.registry``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.results.experiments import EXPERIMENTS, ExperimentResult
from repro.runner.store import ResultStore, RunLog

#: Experiments migrated onto the sweep runner (accept workers/store/log).
SWEEP_IDS = frozenset({"F6", "T5", "F7", "R1", "R2", "C1", "S1"})

#: Reduced parameters the bench gate runs each benched experiment with.
#: Chosen so the whole gated set finishes in seconds while every
#: headline metric stays pinned (see benchmarks/baselines/*.json).
BENCH_KWARGS: Dict[str, Dict[str, Any]] = {
    "T1": {},
    "T2": {},
    "F6": {"vc_counts": [1, 4, 16], "window": 0.01},
    "F7": {"clocks_mhz": [10, 20, 25, 33, 50], "window": 0.01},
    "R1": {"loss_rates": [0.0, 0.01, 0.02], "window": 0.005},
    "R2": {"seeds": [1, 2]},
    # P1 defaults are already bench-sized (it is the perf benchmark);
    # the empty dict just opts it into the default gate set.
    "P1": {},
    "C1": {"seeds": [1, 2], "duration": 0.06, "warmup": 0.02},
    # S1 cannot be shrunk much below its defaults: the >= 2048
    # concurrency bar needs the full Poisson steady state, so it is the
    # one long-running bench entry (the CI scale job runs it alone).
    "S1": {"seeds": [1, 2]},
}


@dataclass(frozen=True)
class ExperimentEntry:
    """Everything the harness knows about one experiment id."""

    id: str
    run: Callable[..., ExperimentResult]
    description: str
    #: True when the run function is sweep-shaped (runner-migrated).
    sweep: bool
    #: Reduced kwargs for the bench gate ({} means "bench at defaults";
    #: ids absent from BENCH_KWARGS are not benched by default).
    bench_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __call__(
        self,
        workers: int = 0,
        store: Optional[ResultStore] = None,
        log: Optional[RunLog] = None,
        **kwargs: Any,
    ) -> ExperimentResult:
        """Run the experiment, forwarding runner knobs only if it sweeps."""
        if self.sweep:
            return self.run(workers=workers, store=store, log=log, **kwargs)
        return self.run(**kwargs)


def _headline(fn: Callable[..., ExperimentResult]) -> str:
    doc = (fn.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def _build() -> Dict[str, ExperimentEntry]:
    return {
        experiment_id: ExperimentEntry(
            id=experiment_id,
            run=fn,
            description=_headline(fn),
            sweep=experiment_id in SWEEP_IDS,
            bench_kwargs=dict(BENCH_KWARGS.get(experiment_id, {})),
        )
        for experiment_id, fn in EXPERIMENTS.items()
    }


#: The registry itself, keyed by upper-case experiment id, in the
#: presentation order EXPERIMENTS defines.
REGISTRY: Dict[str, ExperimentEntry] = _build()

#: Ids the bench harness runs when none are named on the command line.
BENCH_DEFAULT: List[str] = [i for i in REGISTRY if i in BENCH_KWARGS]


def entries() -> List[ExperimentEntry]:
    """Every registered experiment, in presentation order."""
    return list(REGISTRY.values())


def get(experiment_id: str) -> ExperimentEntry:
    """Look up one entry by (case-insensitive) id."""
    entry = REGISTRY.get(experiment_id.upper())
    if entry is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        )
    return entry


def describe() -> str:
    """The id/description table ``python -m repro --help`` embeds."""
    lines = []
    for entry in entries():
        marker = "*" if entry.sweep else " "
        lines.append(f"  {entry.id:4s}{marker} {entry.description}")
    lines.append("  (* = sweep-shaped: honours --workers/--no-cache)")
    return "\n".join(lines)
