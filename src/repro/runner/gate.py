"""Baseline regression gates: committed curves vs the current tree.

A *baseline* is a committed JSON file under ``benchmarks/baselines/``
recording the scalar metrics one experiment produced at a known-good
tree, plus per-metric tolerance bands::

    {
      "experiment": "F7",
      "metrics": {"rx_mhz_for_oc12": 33.0, ...},
      "tolerance": {
        "default": {"rel": 0.01, "abs": 1e-09},
        "per_metric": {"rx_mhz_for_oc12": {"rel": 0.0, "abs": 0.0}}
      },
      "bench_kwargs": {...},   # the reduced parameters that produced it
      "note": "..."
    }

``python -m repro bench --check`` re-runs each experiment with the
recorded reduced parameters and compares metric by metric: a run value
``v`` passes against baseline ``b`` iff ``|v - b| <= abs + rel * |b|``
(NaN passes only against NaN; a metric missing from the run fails; a
metric the run grew that the baseline lacks is reported but does not
fail -- new metrics are not regressions).  Any failure makes the gate
exit nonzero, which is what CI keys on.

``python -m repro bench --update`` regenerates the files, seeding the
repo's bench trajectory at the current tree.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: Tolerances used when a baseline does not spell its own out.  The
#: simulations are deterministic pure-Python float arithmetic, so the
#: bands exist to absorb deliberate small model refinements, not noise.
DEFAULT_REL_TOL = 0.01
DEFAULT_ABS_TOL = 1e-9


@dataclass(frozen=True)
class Tolerance:
    """One metric's acceptance band: ``abs + rel * |baseline|``."""

    rel: float = DEFAULT_REL_TOL
    abs: float = DEFAULT_ABS_TOL

    def allows(self, baseline: float, value: float) -> bool:
        if math.isnan(baseline) or math.isnan(value):
            return math.isnan(baseline) and math.isnan(value)
        if math.isinf(baseline) or math.isinf(value):
            return baseline == value
        return abs(value - baseline) <= self.abs + self.rel * abs(baseline)


@dataclass(frozen=True)
class Baseline:
    """One experiment's committed reference metrics."""

    experiment: str
    metrics: Mapping[str, float]
    default_tolerance: Tolerance = Tolerance()
    per_metric: Mapping[str, Tolerance] = field(default_factory=dict)
    bench_kwargs: Mapping[str, Any] = field(default_factory=dict)
    note: str = ""

    def tolerance_for(self, metric: str) -> Tolerance:
        return self.per_metric.get(metric, self.default_tolerance)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Baseline":
        tolerance = payload.get("tolerance", {})
        default = Tolerance(**tolerance.get("default", {}))
        per_metric = {
            name: Tolerance(**band)
            for name, band in tolerance.get("per_metric", {}).items()
        }
        return cls(
            experiment=payload["experiment"],
            metrics=dict(payload["metrics"]),
            default_tolerance=default,
            per_metric=per_metric,
            bench_kwargs=dict(payload.get("bench_kwargs", {})),
            note=payload.get("note", ""),
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "metrics": dict(sorted(self.metrics.items())),
            "tolerance": {
                "default": {
                    "rel": self.default_tolerance.rel,
                    "abs": self.default_tolerance.abs,
                },
                "per_metric": {
                    name: {"rel": band.rel, "abs": band.abs}
                    for name, band in sorted(self.per_metric.items())
                },
            },
            "bench_kwargs": dict(self.bench_kwargs),
            "note": self.note,
        }


@dataclass
class Deviation:
    """One compared metric and its verdict."""

    experiment: str
    metric: str
    baseline: Optional[float]
    value: Optional[float]
    tolerance: Optional[Tolerance]
    ok: bool
    detail: str = ""

    def format(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return (
            f"  [{mark}] {self.experiment}.{self.metric}: "
            f"baseline={_fmt(self.baseline)} run={_fmt(self.value)}"
            + (f" ({self.detail})" if self.detail else "")
        )


def _fmt(value: Optional[float]) -> str:
    return "missing" if value is None else f"{value:.6g}"


@dataclass
class GateReport:
    """Every comparison the gate made, plus the aggregate verdict."""

    deviations: List[Deviation] = field(default_factory=list)
    #: Metrics the run grew that no baseline records (informational).
    new_metrics: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(d.ok for d in self.deviations)

    @property
    def failures(self) -> List[Deviation]:
        return [d for d in self.deviations if not d.ok]

    def format(self) -> str:
        lines = [d.format() for d in self.deviations]
        if self.new_metrics:
            lines.append(
                "  note: run metrics with no baseline (not gated): "
                + ", ".join(sorted(self.new_metrics))
            )
        verdict = (
            "bench gate: PASS"
            if self.ok
            else f"bench gate: FAIL ({len(self.failures)} metric(s) out of band)"
        )
        lines.append(verdict)
        return "\n".join(lines)


class BaselineGate:
    """Loads committed baselines and judges runs against them."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)

    def path_for(self, experiment_id: str) -> Path:
        return self.directory / f"{experiment_id.upper()}.json"

    def known(self) -> List[str]:
        """Experiment ids with a committed baseline, sorted."""
        if not self.directory.exists():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def load(self, experiment_id: str) -> Baseline:
        payload = json.loads(
            self.path_for(experiment_id).read_text(encoding="utf-8")
        )
        return Baseline.from_payload(payload)

    def write(self, baseline: Baseline) -> Path:
        path = self.path_for(baseline.experiment)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(baseline.to_payload(), indent=2, sort_keys=False)
            + "\n",
            encoding="utf-8",
        )
        return path

    def compare(
        self, experiment_id: str, metrics: Mapping[str, float]
    ) -> GateReport:
        """Judge one experiment's run metrics against its baseline."""
        baseline = self.load(experiment_id)
        report = GateReport()
        for name, expected in sorted(baseline.metrics.items()):
            band = baseline.tolerance_for(name)
            if name not in metrics:
                report.deviations.append(
                    Deviation(
                        experiment=experiment_id,
                        metric=name,
                        baseline=expected,
                        value=None,
                        tolerance=band,
                        ok=False,
                        detail="metric missing from run",
                    )
                )
                continue
            value = float(metrics[name])
            ok = band.allows(float(expected), value)
            detail = ""
            if not ok:
                detail = (
                    f"|delta|={abs(value - expected):.6g} > "
                    f"{band.abs:.3g}+{band.rel:.3g}*|baseline|"
                )
            report.deviations.append(
                Deviation(
                    experiment=experiment_id,
                    metric=name,
                    baseline=float(expected),
                    value=value,
                    tolerance=band,
                    ok=ok,
                    detail=detail,
                )
            )
        report.new_metrics = [
            name for name in metrics if name not in baseline.metrics
        ]
        return report

    def merge(self, reports: Mapping[str, GateReport]) -> GateReport:
        """Flatten per-experiment reports into one aggregate."""
        merged = GateReport()
        for _, report in sorted(reports.items()):
            merged.deviations.extend(report.deviations)
            merged.new_metrics.extend(report.new_metrics)
        return merged
