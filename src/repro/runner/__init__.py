"""``repro.runner``: deterministic parallel sweep execution.

The evaluation is a sweep -- line rates, PDU sizes, VC counts, engine
clocks, architectures -- and this package turns every sweep-shaped
experiment into a declarative grid executed across worker processes
with results bit-identical to a serial run:

- :mod:`repro.runner.spec` -- :class:`SweepSpec` / :class:`Point`
  parameter grids with a stable content hash per point;
- :mod:`repro.runner.executor` -- :class:`Executor` / :func:`run_sweep`,
  process-pool sharding with hash-derived RNG seeding, per-point crash
  isolation, bounded retry, and timeouts;
- :mod:`repro.runner.store` -- :class:`ResultStore`, the
  content-addressed ``.repro-cache/`` (keyed by point hash x kernel x
  cost-model fingerprint) plus :class:`RunLog` JSONL journals;
- :mod:`repro.runner.gate` -- :class:`BaselineGate`, the
  ``python -m repro bench --check`` regression gate over committed
  ``benchmarks/baselines/*.json``;
- :mod:`repro.runner.registry` -- the experiment registry the CLI and
  the bench harness enumerate (imported on demand, not here: it pulls
  in every experiment, and the experiments import this package);
- :mod:`repro.runner.bench` -- the ``bench`` subcommand.

See ``docs/RUNNER.md`` for the sweep-spec format, cache layout, and
baseline semantics.
"""

from repro.runner.executor import (
    Executor,
    Kernel,
    PointFailure,
    SweepError,
    SweepRun,
    kernel_name,
    run_sweep,
)
from repro.runner.gate import Baseline, BaselineGate, GateReport, Tolerance
from repro.runner.spec import Point, SweepSpec, content_hash
from repro.runner.store import (
    DEFAULT_CACHE_DIR,
    ResultStore,
    RunLog,
    cost_model_fingerprint,
)

__all__ = [
    "Baseline",
    "BaselineGate",
    "DEFAULT_CACHE_DIR",
    "Executor",
    "GateReport",
    "Kernel",
    "Point",
    "PointFailure",
    "ResultStore",
    "RunLog",
    "SweepError",
    "SweepRun",
    "SweepSpec",
    "Tolerance",
    "content_hash",
    "cost_model_fingerprint",
    "kernel_name",
    "run_sweep",
]
