"""Declarative parameter sweeps: grids of points with stable hashes.

A :class:`SweepSpec` describes one experiment's parameter space as a
cartesian grid of named axes (plus fixed parameters), or as an explicit
list of named points.  Expanding the spec yields :class:`Point` objects
in a deterministic order -- the order the sweep's output keeps no
matter how many workers execute it.

Every point carries a *content hash*: the SHA-256 of a canonical JSON
rendering of ``{experiment, params}``.  The hash is the point's
identity everywhere downstream:

- the :class:`~repro.runner.store.ResultStore` uses it (together with
  the kernel name and the cost-model fingerprint) as the cache key;
- the :class:`~repro.runner.executor.Executor` derives each point's
  :class:`~repro.sim.random.RandomStreams` root seed from it, so a
  point draws the same randomness whether it runs first on one worker
  or last on sixteen -- never from worker identity or pool ordering
  (simlint rule SL6 enforces the negative).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.sim.random import RandomStreams

#: Parameter values must round-trip through JSON unchanged: scalars,
#: or (nested) lists/tuples of scalars.
_SCALARS = (int, float, str, bool, type(None))


def _canonical(value: Any) -> Any:
    """*value* reduced to JSON-stable form (tuples become lists)."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    raise TypeError(
        f"sweep parameter values must be JSON scalars or lists, "
        f"not {type(value).__name__}"
    )


def content_hash(experiment: str, params: Mapping[str, Any]) -> str:
    """The stable SHA-256 identity of one parameter point."""
    payload = json.dumps(
        {
            "experiment": experiment,
            "params": {k: _canonical(v) for k, v in sorted(params.items())},
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Point:
    """One parameter assignment of a sweep, with its stable identity."""

    experiment: str
    index: int  #: position in the spec's expansion order
    params: Mapping[str, Any]
    hash: str

    @property
    def seed(self) -> int:
        """Root RNG seed derived from the content hash (not the index:
        inserting a point never perturbs its neighbours' draws)."""
        return int(self.hash[:16], 16)

    def streams(self) -> RandomStreams:
        """A fresh named-stream factory keyed by this point's hash."""
        return RandomStreams(self.seed)

    def label(self) -> str:
        """Short human-readable form for logs and error messages."""
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.experiment}[{inner}]"


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter space: axes x fixed params, or a list.

    ``axes`` expand cartesian-product style in declaration order (the
    last axis varies fastest, like nested loops); ``explicit`` bypasses
    the grid with a hand-written point list (T5's architecture list).
    ``x_axis`` names the axis that becomes the x column when the sweep
    is rendered as an :class:`~repro.analysis.sweep.Series`.
    """

    experiment: str
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    explicit: Optional[Sequence[Mapping[str, Any]]] = None
    x_axis: Optional[str] = None

    @classmethod
    def grid(
        cls,
        experiment: str,
        axes: Mapping[str, Sequence[Any]],
        fixed: Optional[Mapping[str, Any]] = None,
        x_axis: Optional[str] = None,
    ) -> "SweepSpec":
        """A cartesian sweep; ``x_axis`` defaults to the first axis."""
        if not axes:
            raise ValueError("a grid sweep needs at least one axis")
        for name, values in axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")
        return cls(
            experiment=experiment,
            axes=dict(axes),
            fixed=dict(fixed or {}),
            x_axis=x_axis if x_axis is not None else next(iter(axes)),
        )

    @classmethod
    def from_points(
        cls,
        experiment: str,
        points: Sequence[Mapping[str, Any]],
        fixed: Optional[Mapping[str, Any]] = None,
        x_axis: Optional[str] = None,
    ) -> "SweepSpec":
        """An explicit named point list (non-grid sweeps like T5)."""
        if not points:
            raise ValueError("an explicit sweep needs at least one point")
        return cls(
            experiment=experiment,
            fixed=dict(fixed or {}),
            explicit=[dict(p) for p in points],
            x_axis=x_axis,
        )

    def _param_sets(self) -> Iterator[Dict[str, Any]]:
        if self.explicit is not None:
            for entry in self.explicit:
                params = dict(self.fixed)
                params.update(entry)
                yield params
            return
        names = list(self.axes)
        for values in itertools.product(*(self.axes[n] for n in names)):
            params = dict(self.fixed)
            params.update(zip(names, values))
            yield params

    def points(self) -> List[Point]:
        """Expand to points in deterministic spec order."""
        out = []
        for index, params in enumerate(self._param_sets()):
            out.append(
                Point(
                    experiment=self.experiment,
                    index=index,
                    params=params,
                    hash=content_hash(self.experiment, params),
                )
            )
        return out

    def __len__(self) -> int:
        if self.explicit is not None:
            return len(self.explicit)
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def spec_hash(self) -> str:
        """One hash over the whole expansion (names run logs stably)."""
        digest = hashlib.sha256()
        for point in self.points():
            digest.update(point.hash.encode("ascii"))
        return digest.hexdigest()
