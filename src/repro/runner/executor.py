"""Sharded sweep execution with bit-identical-to-serial results.

The :class:`Executor` turns a :class:`~repro.runner.spec.SweepSpec`
plus a *kernel* -- a module-level function
``kernel(params, streams) -> dict`` -- into one values dict per point.
With ``workers <= 1`` every point runs inline; with ``workers >= 2``
uncached points fan out over a ``ProcessPoolExecutor``.  Three rules
make the two modes byte-identical:

1. **Determinism by construction.**  A kernel sees only its parameter
   dict and a :class:`~repro.sim.random.RandomStreams` factory seeded
   from the *point's content hash* -- never the worker id, the pid, or
   the completion order (simlint SL6 polices this).  Identical inputs,
   identical outputs, wherever and whenever the point runs.
2. **Assembly in spec order.**  Results are keyed by point index and
   reassembled in the spec's expansion order; completion order is
   invisible in the output.
3. **Workers never touch the store.**  Cache reads happen before
   submission and writes after collection, both in the parent, so
   parallelism adds no filesystem races.

Failure containment: a point that raises is retried up to
``retries`` times (same hash-derived seed -- retry exists for
environmental casualties, not for re-rolling dice), then recorded as a
failure while the rest of the sweep completes.  Only at the end does
:func:`run_sweep` raise a :class:`SweepError` naming every casualty --
one diverging point fails loudly without killing the sweep.  A
per-point wall-clock ``timeout`` (enforced in parallel mode, where a
hung worker cannot stall the parent forever) fails the point the same
way.
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.analysis.sweep import Series
from repro.runner.spec import Point, SweepSpec
from repro.runner.store import ResultStore, RunLog
from repro.sim.random import RandomStreams

#: A sweep kernel: pure function of (params, hash-derived streams).
Kernel = Callable[[Dict[str, Any], RandomStreams], Dict[str, Any]]


def kernel_name(kernel: Kernel) -> str:
    """Stable dotted identity of a kernel (part of the cache key)."""
    return f"{kernel.__module__}:{kernel.__qualname__}"


def _invoke(kernel: Kernel, params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Worker entry point: run one point with its hash-derived streams."""
    values = kernel(dict(params), RandomStreams(seed))
    if not isinstance(values, dict):
        raise TypeError(
            f"kernel {kernel_name(kernel)} returned "
            f"{type(values).__name__}, expected dict"
        )
    return values


@dataclass
class PointFailure:
    """One point that exhausted its retries (or timed out)."""

    point: Point
    error: str
    attempts: int

    def format(self) -> str:
        return f"{self.point.label()} failed after {self.attempts} attempt(s): {self.error}"


@dataclass
class SweepRun:
    """Everything one sweep execution produced, in spec order."""

    spec: SweepSpec
    kernel: str
    points: List[Point]
    #: One values dict per point (None where the point failed).
    values: List[Optional[Dict[str, Any]]]
    failures: List[PointFailure] = field(default_factory=list)
    #: Executor counters: points / executed / cached / failed / retried.
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def series(
        self, name: str, x_label: Optional[str] = None
    ) -> Series:
        """The sweep as a :class:`~repro.analysis.sweep.Series`.

        ``x_label`` defaults to the spec's ``x_axis``; every point must
        have succeeded and returned the same value keys.
        """
        axis = x_label if x_label is not None else self.spec.x_axis
        if axis is None:
            raise ValueError("sweep has no x axis; pass x_label")
        series = Series(name=name, x_label=axis)
        for point, values in zip(self.points, self.values):
            if values is None:
                raise ValueError(
                    f"cannot build a series with failed point {point.label()}"
                )
            series.add_point(point.params[axis], **values)
        return series


class SweepError(RuntimeError):
    """Raised after a completed sweep that had failing points."""

    def __init__(self, run: SweepRun) -> None:
        self.run = run
        lines = [f"{len(run.failures)} of {len(run.points)} sweep point(s) failed:"]
        lines += [f"  {f.format()}" for f in run.failures]
        super().__init__("\n".join(lines))


class Executor:
    """Runs sweeps serially or across a process pool (see module doc)."""

    def __init__(
        self,
        workers: int = 0,
        retries: int = 1,
        timeout: Optional[float] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.workers = workers
        self.retries = retries
        self.timeout = timeout
        #: Counters of the most recent run (see ``SweepRun.stats``).
        self.stats: Dict[str, int] = {}

    # -- public ------------------------------------------------------------

    def run(
        self,
        spec: SweepSpec,
        kernel: Kernel,
        store: Optional[ResultStore] = None,
        log: Optional[RunLog] = None,
    ) -> SweepRun:
        """Execute every point of *spec*; never raises on point failure.

        Callers that want loud failure use :func:`run_sweep`, which
        re-raises the collected casualties as a :class:`SweepError`.
        """
        points = spec.points()
        kname = kernel_name(kernel)
        self.stats = {
            "points": len(points),
            "executed": 0,
            "cached": 0,
            "failed": 0,
            "retried": 0,
        }
        run = SweepRun(
            spec=spec,
            kernel=kname,
            points=points,
            values=[None] * len(points),
        )
        if log is not None:
            log.event(
                "sweep_started",
                experiment=spec.experiment,
                kernel=kname,
                points=len(points),
                workers=self.workers,
                spec_hash=spec.spec_hash(),
                fingerprint=store.fingerprint if store is not None else None,
            )

        # Cache probe (parent process only).
        pending: List[Point] = []
        for point in points:
            cached = store.get(point, kname) if store is not None else None
            if cached is not None:
                run.values[point.index] = cached
                self.stats["cached"] += 1
                if log is not None:
                    log.event(
                        "point_cached", index=point.index, hash=point.hash
                    )
            else:
                pending.append(point)

        if pending:
            if self.workers >= 2:
                self._run_pool(pending, kernel, run, log)
            else:
                self._run_serial(pending, kernel, run, log)

        # Persist fresh results (parent process only).
        if store is not None:
            for point in pending:
                values = run.values[point.index]
                if values is not None:
                    store.put(point, kname, values)

        self.stats["failed"] = len(run.failures)
        run.stats = dict(self.stats)
        if log is not None:
            log.event("sweep_completed", stats=run.stats)
        return run

    # -- execution modes ---------------------------------------------------

    def _record(
        self,
        run: SweepRun,
        log: Optional[RunLog],
        point: Point,
        values: Optional[Dict[str, Any]],
        error: Optional[str],
        attempts: int,
        elapsed: float,
    ) -> None:
        if values is not None:
            run.values[point.index] = values
            self.stats["executed"] += 1
            if log is not None:
                log.event(
                    "point_completed",
                    index=point.index,
                    hash=point.hash,
                    attempts=attempts,
                    elapsed_s=round(elapsed, 6),
                )
        else:
            run.failures.append(
                PointFailure(point=point, error=error or "?", attempts=attempts)
            )
            if log is not None:
                log.event(
                    "point_failed",
                    index=point.index,
                    hash=point.hash,
                    attempts=attempts,
                    error=error,
                )

    def _run_serial(
        self,
        pending: List[Point],
        kernel: Kernel,
        run: SweepRun,
        log: Optional[RunLog],
    ) -> None:
        for point in pending:
            started = time.perf_counter()
            values: Optional[Dict[str, Any]] = None
            error: Optional[str] = None
            attempts = 0
            for attempt in range(self.retries + 1):
                attempts = attempt + 1
                try:
                    values = _invoke(kernel, point.params, point.seed)
                    break
                except Exception as exc:  # noqa: BLE001 -- isolation boundary
                    error = f"{type(exc).__name__}: {exc}"
                    if attempt < self.retries:
                        self.stats["retried"] += 1
            self._record(
                run, log, point, values, error, attempts,
                time.perf_counter() - started,
            )

    def _run_pool(
        self,
        pending: List[Point],
        kernel: Kernel,
        run: SweepRun,
        log: Optional[RunLog],
    ) -> None:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending))
        ) as pool:
            futures = {
                point.index: pool.submit(
                    _invoke, kernel, point.params, point.seed
                )
                for point in pending
            }
            # Collect in spec order: completion order must stay invisible.
            for point in pending:
                started = time.perf_counter()
                values: Optional[Dict[str, Any]] = None
                error: Optional[str] = None
                attempts = 0
                future = futures[point.index]
                for attempt in range(self.retries + 1):
                    attempts = attempt + 1
                    try:
                        values = future.result(timeout=self.timeout)
                        break
                    except concurrent.futures.TimeoutError:
                        # The worker may be wedged; do not resubmit
                        # (a hung kernel would hang again) -- fail the
                        # point and let the sweep finish.
                        future.cancel()
                        error = (
                            f"timed out after {self.timeout:.3g}s "
                            "(wall clock)"
                        )
                        break
                    except concurrent.futures.BrokenExecutor as exc:
                        # The pool died under us (a worker segfaulted or
                        # was OOM-killed); nothing further can run.
                        error = f"worker pool broke: {exc}"
                        break
                    except Exception as exc:  # noqa: BLE001 -- isolation boundary
                        error = "".join(
                            traceback.format_exception_only(type(exc), exc)
                        ).strip()
                        if attempt < self.retries:
                            self.stats["retried"] += 1
                            future = pool.submit(
                                _invoke, kernel, point.params, point.seed
                            )
                self._record(
                    run, log, point, values, error, attempts,
                    time.perf_counter() - started,
                )


def run_sweep(
    spec: SweepSpec,
    kernel: Kernel,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
) -> SweepRun:
    """Execute *spec* and fail loudly if any point failed.

    The convenience wrapper every experiment uses: builds an
    :class:`Executor`, runs the sweep to completion (every healthy
    point finishes even when one diverges), then raises
    :class:`SweepError` carrying the partial :class:`SweepRun` if there
    were casualties.
    """
    executor = Executor(workers=workers, retries=retries, timeout=timeout)
    run = executor.run(spec, kernel, store=store, log=log)
    if not run.ok:
        raise SweepError(run)
    return run
