"""Generator-based cooperative processes.

A *process* is a Python generator driven by the simulator.  The generator
yields :class:`~repro.sim.core.Event` objects; the process suspends until
the yielded event fires and then resumes with the event's value::

    def sender(sim, link):
        for _ in range(10):
            yield sim.timeout(0.001)      # wait 1 ms
            yield link.send(cell)         # wait for the send to complete

    sim.process(sender(sim, link))

A process is itself an event that triggers when the generator returns, so
processes can wait on each other (fork/join).  Processes may be
interrupted: :meth:`Process.interrupt` raises :class:`Interrupt` inside the
generator at its current suspension point.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.sim.core import Event, SimulationError, Simulator, URGENT


class Interrupt(Exception):
    """Raised inside a process that someone interrupted.

    The *cause* argument passed to :meth:`Process.interrupt` is available
    as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator; also an event that fires on completion."""

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off the generator as soon as the simulator starts working at
        # the current instant.
        init = Event(sim)
        init.add_callback(self._resume)
        init._state = Event._TRIGGERED
        sim._schedule(0.0, init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        hit = Event(self.sim)
        hit.add_callback(lambda _ev: self._throw(Interrupt(cause)))
        hit._state = Event._TRIGGERED
        self.sim._schedule(0.0, hit, priority=URGENT)

    # -- driving the generator -------------------------------------------

    def _resume(self, event: Event) -> None:
        if not self.is_alive:  # interrupted after the event triggered
            return
        self._waiting_on = None
        try:
            if event.exception is not None:
                target = self.generator.throw(event.exception)
            else:
                target = self.generator.send(
                    event._value if event is not self else None
                )
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt:
            self.fail(
                SimulationError(
                    f"process {self.name} let an Interrupt escape; catch it "
                    "or re-raise a domain exception"
                )
            )
            return
        except BaseException as exc:  # body raised: fail the process event
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupt as leaked:
            self.fail(
                SimulationError(
                    f"process {self.name} did not handle Interrupt({leaked.cause!r})"
                )
            )
            return
        except BaseException as raised:  # body raised: fail the process event
            self.fail(raised)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self.fail(
                TypeError(
                    f"process {self.name} yielded {target!r}; processes may "
                    "only yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.trigger([])
            return
        for ev in self.events:
            ev.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered.

    The value is the list of child values in construction order.  If any
    child fails, the condition fails with that child's exception (first
    failure wins).
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger([ev.value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the first child event triggers (value = that event)."""

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self.trigger(event)
