"""Reproducible random number streams.

Each logically distinct source of randomness in a simulation (every traffic
generator, every loss process) gets its *own* stream, derived from a root
seed and a stable name.  Adding a new random consumer therefore never
perturbs the draws seen by existing consumers -- the classic common random
numbers discipline for comparing configurations.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    # -- convenience draws -------------------------------------------------

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean); mean must be positive."""
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def randint(self, name: str, lo: int, hi: int) -> int:
        return self.stream(name).randint(lo, hi)

    def bernoulli(self, name: str, p: float) -> bool:
        """True with probability *p*."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability {p} outside [0, 1]")
        if p == 0.0:
            return False
        if p == 1.0:
            return True
        return self.stream(name).random() < p

    def choice(self, name: str, options: Sequence[T]) -> T:
        if not options:
            raise ValueError("choice from empty sequence")
        return self.stream(name).choice(options)

    def weighted_choice(
        self,
        name: str,
        options: Sequence[T],
        weights: Sequence[float],
    ) -> T:
        if len(options) != len(weights):
            raise ValueError("options and weights must have equal length")
        return self.stream(name).choices(options, weights=weights, k=1)[0]

    def shuffled(self, name: str, items: Sequence[T]) -> list[T]:
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def fork(self, name: str, seed_offset: Optional[int] = None) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        base = seed_offset if seed_offset is not None else 0
        digest = hashlib.sha256(
            f"{self.seed}:fork:{name}:{base}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
