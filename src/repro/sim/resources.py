"""Contention primitives: counted resources and object stores.

These model the shared facilities of the simulated hardware: a bus that one
master holds at a time is a :class:`Resource` with capacity 1; a mailbox of
descriptors between driver and adaptor is a :class:`Store`.

Both follow the event discipline of the kernel: ``request``/``get``/``put``
return events to ``yield`` on, and grants are strictly FIFO, which keeps
simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.core import Event, SimulationError, Simulator


class Request(Event):
    """A pending claim on a :class:`Resource` (the event yields the token)."""

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource


class Resource:
    """A facility with *capacity* identical slots, granted FIFO.

    Usage from a process::

        grant = bus.request()
        yield grant
        ...use the bus...
        bus.release(grant)

    The *grant* object doubles as the token to release; releasing a grant
    that was never issued (or twice) raises :class:`SimulationError`.
    """

    def __init__(
        self, sim: Simulator, capacity: int = 1, name: str = "resource"
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._holders: set[Request] = set()
        self._waiters: Deque[Request] = deque()
        # statistics
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._request_times: dict[int, float] = {}

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self.sim, self)
        self.total_requests += 1
        self._request_times[id(req)] = self.sim.now
        if len(self._holders) < self.capacity:
            self._grant(req)
        else:
            self._waiters.append(req)
        return req

    def release(self, grant: Request) -> None:
        """Return a previously granted slot, waking the next waiter."""
        if grant not in self._holders:
            raise SimulationError(f"release of unheld grant on {self.name}")
        self._holders.discard(grant)
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, req: Request) -> None:
        self._holders.add(req)
        started = self._request_times.pop(id(req), self.sim.now)
        self.total_wait_time += self.sim.now - started
        req.trigger(req)

    @property
    def mean_wait(self) -> float:
        """Average time requests spent queued before being granted."""
        granted = self.total_requests - len(self._waiters)
        return self.total_wait_time / granted if granted else 0.0


class Store:
    """An unbounded-or-bounded FIFO buffer of Python objects.

    ``put(item)`` returns an event that fires when the item has been
    accepted (immediately unless the store is full); ``get()`` returns an
    event that fires with the next item once one is available.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self.total_put = 0
        self.total_got = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Offer *item*; the event fires once the store has accepted it."""
        ev = Event(self.sim)
        if self._getters:
            # Hand straight to the oldest waiting getter.
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.trigger(item)
            ev.trigger(None)
        elif not self.is_full:
            self._accept(item)
            ev.trigger(None)
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: accept *item* now or return False (dropped)."""
        if self._getters:
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.trigger(item)
            return True
        if self.is_full:
            return False
        self._accept(item)
        return True

    def get(self) -> Event:
        """The event fires with the oldest item once one exists."""
        ev = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            ev.trigger(item)
            self._drain_putters()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self.total_got += 1
        self._drain_putters()
        return True, item

    def _accept(self, item: Any) -> None:
        self._items.append(item)
        self.total_put += 1
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)

    def _drain_putters(self) -> None:
        while self._putters and not self.is_full:
            ev, item = self._putters.popleft()
            self._accept(item)
            ev.trigger(None)
