"""Discrete-event simulation kernel used by every other subsystem.

This is a small, self-contained, simpy-flavoured kernel built from scratch
for this reproduction.  It provides:

- :class:`~repro.sim.core.Simulator` -- the event loop and clock,
- :class:`~repro.sim.core.Event` -- the primitive everything waits on,
- :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes (``yield sim.timeout(...)``),
- resources (:class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.Store`) for contention modelling,
- monitors (:mod:`repro.sim.monitor`) for statistics collection, and
- :class:`~repro.sim.random.RandomStreams` for reproducible, independently
  seeded random number streams.

Simulation time is a float measured in **seconds**.  Ties in event time are
broken deterministically by scheduling order, so a simulation is fully
reproducible given a seed.
"""

from repro.sim.core import (
    CalendarQueue,
    Event,
    SimConfig,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.process import AllOf, AnyOf, Interrupt, Process
from repro.sim.monitor import (
    Counter,
    Histogram,
    SeriesRecorder,
    ThroughputMeter,
    TimeWeightedStat,
    WelfordStat,
)
from repro.sim.random import RandomStreams
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Counter",
    "Event",
    "SimConfig",
    "Histogram",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "SeriesRecorder",
    "SimulationError",
    "Simulator",
    "Store",
    "ThroughputMeter",
    "TimeWeightedStat",
    "Timeout",
    "WelfordStat",
]
