"""Statistics collection for simulations.

All experiment output flows through these small accumulators.  They are
deliberately dependency-free (no numpy) so the core library stays pure;
the benchmark harness may post-process with numpy/scipy.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.core import Simulator


class Counter:
    """A named monotonically increasing event counter."""

    __slots__ = ("name", "count")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.count = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("Counter only increments")
        self.count += by

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.count})"


class WelfordStat:
    """Streaming mean/variance via Welford's algorithm.

    Numerically stable for long runs; used for per-sample statistics such
    as latencies.
    """

    __slots__ = ("n", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "WelfordStat") -> "WelfordStat":
        """Combine two accumulators (parallel Welford merge)."""
        merged = WelfordStat()
        merged.n = self.n + other.n
        if merged.n == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.n / merged.n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.n * other.n / merged.n
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Used for occupancies and utilisations: ``record(t, level)`` notes that
    the signal changed to *level* at time *t*; the mean weights each level
    by how long it was held.
    """

    __slots__ = ("_last_time", "_last_level", "_area", "_start", "maximum")

    def __init__(
        self, start_time: float = 0.0, initial_level: float = 0.0
    ) -> None:
        self._start = start_time
        self._last_time = start_time
        self._last_level = initial_level
        self._area = 0.0
        self.maximum = initial_level

    @property
    def current(self) -> float:
        return self._last_level

    def record(self, now: float, level: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards in TimeWeightedStat")
        self._area += self._last_level * (now - self._last_time)
        self._last_time = now
        self._last_level = level
        if level > self.maximum:
            self.maximum = level

    def mean(self, now: Optional[float] = None) -> float:
        """Time-weighted mean over [start, now]."""
        end = self._last_time if now is None else now
        area = self._area + self._last_level * max(0.0, end - self._last_time)
        span = end - self._start
        return area / span if span > 0 else self._last_level


class Histogram:
    """Fixed-bin histogram with overflow/underflow tracking."""

    def __init__(self, edges: Sequence[float]) -> None:
        if len(edges) < 2:
            raise ValueError("need at least two bin edges")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bin edges must be strictly increasing")
        self.edges = list(edges)
        self.counts = [0] * (len(edges) - 1)
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    @classmethod
    def linear(cls, lo: float, hi: float, bins: int) -> "Histogram":
        step = (hi - lo) / bins
        return cls([lo + i * step for i in range(bins + 1)])

    def add(self, x: float) -> None:
        self.total += 1
        if x < self.edges[0]:
            self.underflow += 1
        elif x >= self.edges[-1]:
            self.overflow += 1
        else:
            self.counts[bisect_right(self.edges, x) - 1] += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile from binned counts (bin upper edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return math.nan
        target = q * self.total
        seen = self.underflow
        if seen >= target:
            return self.edges[0]
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return self.edges[i + 1]
        return self.edges[-1]

    def nonzero_bins(self) -> List[Tuple[float, float, int]]:
        return [
            (self.edges[i], self.edges[i + 1], c)
            for i, c in enumerate(self.counts)
            if c
        ]


class ThroughputMeter:
    """Accumulates delivered payload bytes and reports bit rates."""

    __slots__ = ("sim", "bytes_total", "units_total", "_opened")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.bytes_total = 0
        self.units_total = 0
        self._opened = sim.now

    def account(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot account negative bytes")
        self.bytes_total += nbytes
        self.units_total += 1

    def bits_per_second(self, now: Optional[float] = None) -> float:
        end = self.sim.now if now is None else now
        span = end - self._opened
        return (self.bytes_total * 8) / span if span > 0 else 0.0

    def megabits_per_second(self, now: Optional[float] = None) -> float:
        return self.bits_per_second(now) / 1e6

    def units_per_second(self, now: Optional[float] = None) -> float:
        end = self.sim.now if now is None else now
        span = end - self._opened
        return self.units_total / span if span > 0 else 0.0


class SeriesRecorder:
    """Records (time, value) samples for later plotting or assertions."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("series times must be non-decreasing")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise IndexError("empty series")
        return self.times[-1], self.values[-1]

    def max_value(self) -> float:
        return max(self.values) if self.values else math.nan

    def mean_value(self) -> float:
        return sum(self.values) / len(self.values) if self.values else math.nan


def summarize(samples: Iterable[float]) -> WelfordStat:
    """Fold an iterable of samples into a :class:`WelfordStat`."""
    stat = WelfordStat()
    for x in samples:
        stat.add(x)
    return stat


# -- metric-registry adapters ------------------------------------------------
#
# The observability layer (repro.obs.metrics) exports metrics as JSON;
# these helpers flatten the accumulators above into plain dicts so a
# WelfordStat or Histogram can be registered as a "histogram"-kind
# metric without the registry knowing the concrete type.


def stat_summary(stat: WelfordStat) -> dict[str, object]:
    """A :class:`WelfordStat` as a JSON-safe summary dict."""
    return {
        "n": stat.n,
        "mean": stat.mean,
        "stdev": stat.stdev,
        "min": stat.minimum if stat.n else None,
        "max": stat.maximum if stat.n else None,
    }


def histogram_summary(hist: Histogram) -> dict[str, object]:
    """A :class:`Histogram` as a JSON-safe summary dict."""
    return {
        "total": hist.total,
        "underflow": hist.underflow,
        "overflow": hist.overflow,
        "p50": hist.quantile(0.5) if hist.total else None,
        "p99": hist.quantile(0.99) if hist.total else None,
        "bins": [
            {"lo": lo, "hi": hi, "count": count}
            for lo, hi, count in hist.nonzero_bins()
        ],
    }
