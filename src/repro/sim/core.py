"""Event loop, clock, and the :class:`Event` primitive.

The kernel follows the classic calendar-queue design: a binary heap of
``(time, sequence, event)`` entries.  An :class:`Event` is the unit of
synchronisation -- processes (see :mod:`repro.sim.process`) suspend on
events and are resumed by the event's callbacks when it triggers.

Only the simulator advances time.  All model code runs inside event
callbacks, so there is no concurrency and no locking anywhere.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # import cycle: process.py imports this module
    from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, run-after-end...)."""


#: Events scheduled with ``URGENT`` priority fire before normal events that
#: share the same timestamp.  The kernel uses this internally to make
#: process termination visible before ordinary timeouts at the same instant.
NORMAL = 1
URGENT = 0


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event has three observable states:

    - *pending*: created but not yet triggered,
    - *triggered*: scheduled to fire (value/exception already decided),
    - *processed*: its callbacks have run.

    ``trigger(value)`` succeeds the event; ``fail(exc)`` makes every waiter
    re-raise ``exc``.  Both may be called at most once in total.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_state")

    _PENDING = 0
    _TRIGGERED = 1
    _PROCESSED = 2

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = Event._PENDING

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the outcome (value or exception) is decided."""
        return self._state != Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == Event._PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if the event failed or is pending."""
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ------------------------------------------------------

    def trigger(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Succeed the event with *value* after *delay* seconds."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self._value = value
        self._state = Event._TRIGGERED
        self.sim._schedule(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Fail the event; waiters re-raise *exception*."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = Event._TRIGGERED
        self.sim._schedule(delay, self)
        return self

    # -- waiting ---------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed.

        If the event has already been processed the callback runs
        immediately, which makes late subscription race-free.
        """
        if self._state == Event._PROCESSED:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._state = Event._PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "triggered", "processed")[self._state]
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that triggers itself *delay* seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._state = Event._TRIGGERED
        sim._schedule(delay, self)


class Simulator:
    """The event loop: a clock plus a time-ordered queue of events.

    Typical use::

        sim = Simulator()
        sim.process(my_generator_function(sim))
        sim.run(until=1.0)

    Time is a float in seconds and only moves forward.  Events scheduled
    for identical times fire in scheduling order (FIFO), which keeps runs
    deterministic.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._running = False
        #: Lifetime count of events processed -- the kernel's own
        #: observability counter (exposed as ``sim.events_processed`` by
        #: the metrics layer; see :mod:`repro.obs.metrics`).
        self.events_processed = 0

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- event construction helpers --------------------------------------

    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires *delay* seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator["Event", Any, Any]) -> "Process":
        """Launch *generator* as a cooperative process (see sim.process)."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, event: Event, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._sequence, event)
        )

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        event._process()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass *until*.

        When *until* is given the clock is left exactly at *until* (even if
        the next event lies beyond it), mirroring simpy semantics so that
        rate computations over the run window are exact.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        try:
            if until is None:
                while self._queue:
                    self.step()
            else:
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until}) is in the past (now={self._now})"
                    )
                while self._queue and self._queue[0][0] <= until:
                    self.step()
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run to queue exhaustion; return the number of events processed.

        *max_events* is a runaway guard for tests -- exceeding it raises
        :class:`SimulationError` rather than hanging the test suite.
        """
        processed = 0
        while self._queue:
            self.step()
            processed += 1
            if processed > max_events:
                raise SimulationError("simulation exceeded max_events guard")
        return processed

    # -- misc -------------------------------------------------------------

    def schedule_call(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Convenience: call ``fn(*args)`` after *delay* seconds.

        Returns the underlying event (whose value is the function result).
        """
        ev = Event(self)

        def runner(event: Event) -> None:
            fn(*args)

        ev.add_callback(runner)
        ev._state = Event._TRIGGERED
        self._schedule(delay, ev)
        return ev

    def pending_events(self) -> int:
        """Number of events still queued (triggered but unprocessed)."""
        return len(self._queue)


def all_processed(events: Iterable[Event]) -> bool:
    """True when every event in *events* has been processed."""
    return all(ev.processed for ev in events)
