"""Event loop, clock, and the :class:`Event` primitive.

The kernel keeps a time-ordered queue of ``(time, priority, sequence,
event)`` entries.  An :class:`Event` is the unit of synchronisation --
processes (see :mod:`repro.sim.process`) suspend on events and are
resumed by the event's callbacks when it triggers.

Two interchangeable scheduler backends maintain the queue (selected by
:class:`SimConfig.scheduler`): the default binary heap, and a
:class:`CalendarQueue` timer wheel tuned for the dense same-slot event
pattern the cell pipelines generate.  Both pop entries in the exact
same total order, so a run is bit-for-bit identical under either.

:class:`SimConfig` also carries the ``fast_path`` switch that lets the
NIC/link layers move :class:`repro.atm.burst.CellBurst` batches instead
of per-cell events (see ``docs/PERFORMANCE.md``).

Only the simulator advances time.  All model code runs inside event
callbacks, so there is no concurrency and no locking anywhere.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # import cycle: process.py imports this module
    from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, run-after-end...)."""


#: Events scheduled with ``URGENT`` priority fire before normal events that
#: share the same timestamp.  The kernel uses this internally to make
#: process termination visible before ordinary timeouts at the same instant.
NORMAL = 1
URGENT = 0


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event has three observable states:

    - *pending*: created but not yet triggered,
    - *triggered*: scheduled to fire (value/exception already decided),
    - *processed*: its callbacks have run.

    ``trigger(value)`` succeeds the event; ``fail(exc)`` makes every waiter
    re-raise ``exc``.  Both may be called at most once in total.

    ``cancel()`` withdraws an event that has not yet been processed: a
    queued occurrence (e.g. a :class:`Timeout`) is skipped when it
    reaches the front of the queue -- the clock never advances to it
    and its callbacks never run -- as if it had never been scheduled.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_state")

    _CANCELLED = -1
    _PENDING = 0
    _TRIGGERED = 1
    _PROCESSED = 2

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = Event._PENDING

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the outcome (value or exception) is decided."""
        return self._state > Event._PENDING

    @property
    def cancelled(self) -> bool:
        """True once the event has been withdrawn via :meth:`cancel`."""
        return self._state == Event._CANCELLED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == Event._PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if the event failed or is pending."""
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ------------------------------------------------------

    def cancel(self) -> "Event":
        """Withdraw the event; it will never fire its callbacks.

        Legal until the event is processed (so both never-triggered
        events and queued-but-unprocessed ones can be withdrawn);
        cancelling twice is a no-op.  A queued entry is purged lazily:
        it stays in the scheduler queue until popped, then is skipped
        without advancing the clock or the processed-event count.
        Anything still waiting on a cancelled event waits forever --
        withdrawing an event other processes depend on is the caller's
        responsibility.
        """
        if self._state == Event._PROCESSED:
            raise SimulationError("cannot cancel a processed event")
        self._state = Event._CANCELLED
        return self

    def trigger(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Succeed the event with *value* after *delay* seconds."""
        if self._state != Event._PENDING:
            raise SimulationError(
                "cannot trigger a cancelled event"
                if self._state == Event._CANCELLED
                else "event triggered twice"
            )
        self._value = value
        self._state = Event._TRIGGERED
        self.sim._schedule(delay, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Fail the event; waiters re-raise *exception*."""
        if self._state != Event._PENDING:
            raise SimulationError(
                "cannot fail a cancelled event"
                if self._state == Event._CANCELLED
                else "event triggered twice"
            )
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = Event._TRIGGERED
        self.sim._schedule(delay, self)
        return self

    # -- waiting ---------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed.

        If the event has already been processed the callback runs
        immediately, which makes late subscription race-free.
        """
        if self._state == Event._PROCESSED:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._state = Event._PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {
            Event._CANCELLED: "cancelled",
            Event._PENDING: "pending",
            Event._TRIGGERED: "triggered",
            Event._PROCESSED: "processed",
        }[self._state]
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9f}>"


class Timeout(Event):
    """An event that triggers itself *delay* seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._state = Event._TRIGGERED
        sim._schedule(delay, self)


@dataclass(frozen=True)
class SimConfig:
    """Kernel configuration: scheduler backend and fast-path switches.

    ``fast_path`` does not change the kernel itself -- it is the flag the
    NIC, link, and workload layers consult to decide whether to move
    cells one event at a time (the reference path) or batched into
    :class:`repro.atm.burst.CellBurst` objects with identical per-cell
    accounting.  ``scheduler`` selects the queue backend: ``"heap"``
    (binary heap, the default) or ``"calendar"`` (bucketed timer wheel).
    Both produce the exact same event order.
    """

    fast_path: bool = False
    #: Preferred cells per burst on the fast path (producers may emit
    #: fewer, e.g. when capped by half the downstream FIFO depth).
    burst_cells: int = 32
    scheduler: str = "heap"
    #: Calendar-queue bucket width in seconds.  The default is a handful
    #: of OC-3 cell slots, matching the dense near-future event pattern.
    calendar_bucket_width: float = 16e-6
    #: Number of buckets in the calendar window; events beyond
    #: ``buckets * width`` from the window base overflow into a heap.
    calendar_buckets: int = 512

    def __post_init__(self) -> None:
        if self.scheduler not in ("heap", "calendar"):
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                "expected 'heap' or 'calendar'"
            )
        if self.burst_cells < 1:
            raise ValueError(f"burst_cells must be >= 1, got {self.burst_cells}")
        if self.calendar_bucket_width <= 0:
            raise ValueError("calendar_bucket_width must be positive")
        if self.calendar_buckets < 1:
            raise ValueError("calendar_buckets must be >= 1")


class CalendarQueue:
    """A bucketed timer wheel preserving the kernel's exact total order.

    Entries within ``n_buckets * bucket_width`` of the window base land
    in fixed-width buckets (each a small heap); later entries go to an
    overflow heap.  Because bucket *b* holds only times in
    ``[b*width, (b+1)*width)``, the global minimum is always the top of
    the first non-empty bucket, and same-time entries share a bucket --
    so pops come out in the same ``(time, priority, sequence)`` order a
    single binary heap would produce, just with much smaller heaps.

    When the whole window drains, the wheel rebases onto the earliest
    overflow entry and refills the new window from the overflow heap.
    """

    __slots__ = ("_width", "_n", "_buckets", "_base", "_overflow", "_len")

    def __init__(self, bucket_width: float, n_buckets: int) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self._width = bucket_width
        self._n = n_buckets
        self._buckets: list[list[tuple[float, int, int, Event]]] = [
            [] for _ in range(n_buckets)
        ]
        #: Absolute index of the window's first bucket.  Invariant: every
        #: queued entry has time >= _base * _width (pushes below the base
        #: -- possible only through float fuzz -- are clamped into it).
        self._base = 0
        self._overflow: list[tuple[float, int, int, Event]] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, entry: tuple[float, int, int, Event]) -> None:
        index = int(entry[0] / self._width)
        if index < self._base:
            index = self._base
        if index >= self._base + self._n:
            heapq.heappush(self._overflow, entry)
        else:
            heapq.heappush(self._buckets[index % self._n], entry)
        self._len += 1

    def peek_time(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty.

        Advances the base cursor past empty buckets as a side effect, so
        a peek immediately followed by a pop is O(1) amortised.

        The overflow heap's top competes with the window's: the base
        cursor only advances on pops, so an entry that overflowed the
        window at push time can become the global minimum while the
        window is still busy with later buckets.
        """
        if self._len == 0:
            return float("inf")
        for _ in range(self._n):
            bucket = self._buckets[self._base % self._n]
            if bucket:
                if self._overflow and self._overflow[0][0] < bucket[0][0]:
                    return self._overflow[0][0]
                return bucket[0][0]
            self._base += 1
        return self._overflow[0][0]

    def pop(self) -> tuple[float, int, int, Event]:
        """Remove and return the globally earliest entry."""
        if self._len == 0:
            raise IndexError("pop from empty CalendarQueue")
        n = self._n
        for _ in range(n):
            bucket = self._buckets[self._base % n]
            if bucket:
                # Full-tuple comparison so same-time entries keep the
                # binary heap's (time, priority, sequence) tie order.
                if self._overflow and self._overflow[0] < bucket[0]:
                    self._len -= 1
                    return heapq.heappop(self._overflow)
                self._len -= 1
                return heapq.heappop(bucket)
            self._base += 1
        # The whole window is empty: rebase onto the earliest overflow
        # entry and pull everything inside the new window back in.
        self._base = int(self._overflow[0][0] / self._width)
        window_end = (self._base + n) * self._width
        while self._overflow and self._overflow[0][0] < window_end:
            entry = heapq.heappop(self._overflow)
            index = int(entry[0] / self._width)
            if index < self._base:
                index = self._base
            heapq.heappush(self._buckets[index % n], entry)
        self._len -= 1
        return heapq.heappop(self._buckets[self._base % n])


class Simulator:
    """The event loop: a clock plus a time-ordered queue of events.

    Typical use::

        sim = Simulator()
        sim.process(my_generator_function(sim))
        sim.run(until=1.0)

    Time is a float in seconds and only moves forward.  Events scheduled
    for identical times fire in scheduling order (FIFO), which keeps runs
    deterministic.
    """

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.config = config if config is not None else SimConfig()
        self._now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._calendar: Optional[CalendarQueue] = (
            CalendarQueue(
                self.config.calendar_bucket_width, self.config.calendar_buckets
            )
            if self.config.scheduler == "calendar"
            else None
        )
        self._sequence = 0
        self._running = False
        #: Lifetime count of events processed -- the kernel's own
        #: observability counter (exposed as ``sim.events_processed`` by
        #: the metrics layer; see :mod:`repro.obs.metrics`).
        self.events_processed = 0
        #: High-water mark of queued entries, updated O(1) on every
        #: push.  The scale experiments chart this against VC count to
        #: show the scheduler's footprint stays bounded under churn.
        self.peak_queue_occupancy = 0

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def fast_path(self) -> bool:
        """True when model layers should batch cells into bursts."""
        return self.config.fast_path

    # -- event construction helpers --------------------------------------

    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires *delay* seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator["Event", Any, Any]) -> "Process":
        """Launch *generator* as a cooperative process (see sim.process)."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, event: Event, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._schedule_at(self._now + delay, event, priority)

    def _schedule_at(self, when: float, event: Event, priority: int = NORMAL) -> None:
        """Schedule *event* at the absolute time *when*.

        The fast path (docs/PERFORMANCE.md) schedules at precomputed
        absolute times rather than ``now + (when - now)`` deltas: the
        round trip through a delta can be off by one ulp, which would
        break bit-exact equivalence with the scalar reference.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (at={when}, now={self._now})"
            )
        self._sequence += 1
        entry = (when, priority, self._sequence, event)
        if self._calendar is not None:
            self._calendar.push(entry)
            occupancy = len(self._calendar)
        else:
            heapq.heappush(self._queue, entry)
            occupancy = len(self._queue)
        if occupancy > self.peak_queue_occupancy:
            self.peak_queue_occupancy = occupancy

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process one queue entry (advancing the clock to it).

        A cancelled entry is discarded instead: the clock stays put and
        ``events_processed`` does not move, as if it was never queued.
        """
        if self._calendar is not None:
            when, _priority, _seq, event = self._calendar.pop()
        else:
            when, _priority, _seq, event = heapq.heappop(self._queue)
        if event._state == Event._CANCELLED:
            return
        self._now = when
        self.events_processed += 1
        event._process()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._calendar is not None:
            return self._calendar.peek_time()
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock would pass *until*.

        When *until* is given the clock is left exactly at *until* (even if
        the next event lies beyond it), mirroring simpy semantics so that
        rate computations over the run window are exact.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        calendar = self._calendar
        try:
            if until is None:
                if calendar is not None:
                    while len(calendar):
                        self.step()
                else:
                    while self._queue:
                        self.step()
            else:
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until}) is in the past (now={self._now})"
                    )
                if calendar is not None:
                    while len(calendar) and calendar.peek_time() <= until:
                        self.step()
                else:
                    while self._queue and self._queue[0][0] <= until:
                        self.step()
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run to queue exhaustion; return the number of events processed.

        *max_events* is a runaway guard for tests -- exceeding it raises
        :class:`SimulationError` rather than hanging the test suite.
        """
        start = self.events_processed
        iterations = 0
        while self.pending_events() > 0:
            self.step()
            iterations += 1
            if iterations > max_events:
                raise SimulationError("simulation exceeded max_events guard")
        return self.events_processed - start

    # -- misc -------------------------------------------------------------

    def schedule_call(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Convenience: call ``fn(*args)`` after *delay* seconds.

        Returns the underlying event (whose value is the function result).
        """
        ev = Event(self)

        def runner(event: Event) -> None:
            fn(*args)

        ev.add_callback(runner)
        ev._state = Event._TRIGGERED
        self._schedule(delay, ev)
        return ev

    def wake_at(self, when: float, value: Any = None) -> Event:
        """An event firing at the absolute time *when* (fast-path timeout).

        Unlike ``timeout(when - now)`` this cannot be off by one ulp;
        see :meth:`_schedule_at`.
        """
        ev = Event(self)
        ev._state = Event._TRIGGERED
        ev._value = value
        self._schedule_at(when, ev)
        return ev

    def schedule_call_at(
        self, when: float, fn: Callable[..., None], *args: Any
    ) -> Event:
        """Like :meth:`schedule_call` at an absolute time (fast path)."""
        ev = Event(self)

        def runner(event: Event) -> None:
            fn(*args)

        ev.add_callback(runner)
        ev._state = Event._TRIGGERED
        self._schedule_at(when, ev)
        return ev

    def pending_events(self) -> int:
        """Number of entries still queued (triggered but unprocessed).

        Cancelled entries are purged lazily, so they are counted here
        until they reach the front of the queue (:meth:`peek` may
        likewise report a cancelled entry's time).
        """
        if self._calendar is not None:
            return len(self._calendar)
        return len(self._queue)


def all_processed(events: Iterable[Event]) -> bool:
    """True when every event in *events* has been processed."""
    return all(ev.processed for ev in events)
